package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

// harness spins up a world of n ranks on ppn-process nodes and runs body
// at every rank, failing the test on any rank error.
func world(t *testing.T, nodes, ppn int, body func(c *Comm) error) *simnet.Cluster {
	t.Helper()
	c := simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         5,
	})
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		return body(comm)
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatalf("world(%d,%d): %v", nodes, ppn, err)
	}
	return c
}

func TestAllreduceSumMatchesSerial(t *testing.T) {
	for _, size := range []struct{ nodes, ppn int }{{1, 1}, {1, 2}, {2, 3}, {4, 2}, {3, 5}} {
		t.Run(fmt.Sprintf("%dx%d", size.nodes, size.ppn), func(t *testing.T) {
			n := size.nodes * size.ppn
			const elems = 1000
			var mu sync.Mutex
			results := make(map[int][]float32)
			world(t, size.nodes, size.ppn, func(c *Comm) error {
				data := make([]float32, elems)
				for i := range data {
					data[i] = float32(c.Rank()*elems + i)
				}
				if err := Allreduce(c, data, OpSum); err != nil {
					return err
				}
				mu.Lock()
				results[c.Rank()] = data
				mu.Unlock()
				return nil
			})
			// Expected: sum over ranks of (r*elems + i).
			for i := 0; i < elems; i++ {
				var want float32
				for r := 0; r < n; r++ {
					want += float32(r*elems + i)
				}
				for r := 0; r < n; r++ {
					if got := results[r][i]; got != want {
						t.Fatalf("rank %d elem %d = %v, want %v", r, i, got, want)
					}
				}
			}
		})
	}
}

func TestAllreduceLargeUsesRingAndIsCorrect(t *testing.T) {
	// > smallThreshold bytes forces the ring path.
	const elems = 40000 // 160 KB of float32
	var mu sync.Mutex
	results := make(map[int]float64)
	world(t, 2, 3, func(c *Comm) error {
		data := make([]float32, elems)
		for i := range data {
			data[i] = 1
		}
		if err := Allreduce(c, data, OpSum); err != nil {
			return err
		}
		var sum float64
		for _, v := range data {
			sum += float64(v)
		}
		mu.Lock()
		results[c.Rank()] = sum
		mu.Unlock()
		return nil
	})
	for r, sum := range results {
		if sum != 6*elems {
			t.Fatalf("rank %d sum = %v, want %v", r, sum, 6*elems)
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want func(vals []float64) float64
	}{
		{OpSum, func(v []float64) float64 {
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s
		}},
		{OpProd, func(v []float64) float64 {
			s := 1.0
			for _, x := range v {
				s *= x
			}
			return s
		}},
		{OpMax, func(v []float64) float64 {
			s := math.Inf(-1)
			for _, x := range v {
				s = math.Max(s, x)
			}
			return s
		}},
		{OpMin, func(v []float64) float64 {
			s := math.Inf(1)
			for _, x := range v {
				s = math.Min(s, x)
			}
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.op.String(), func(t *testing.T) {
			const n = 5
			vals := []float64{3, -1, 7, 2, 5}
			var mu sync.Mutex
			got := map[int]float64{}
			world(t, 1, n, func(c *Comm) error {
				data := []float64{vals[c.Rank()]}
				if err := Allreduce(c, data, tc.op); err != nil {
					return err
				}
				mu.Lock()
				got[c.Rank()] = data[0]
				mu.Unlock()
				return nil
			})
			want := tc.want(vals)
			for r := 0; r < n; r++ {
				if got[r] != want {
					t.Fatalf("%v: rank %d = %v, want %v", tc.op, r, got[r], want)
				}
			}
		})
	}
}

func TestAllreduceIntBitwiseOps(t *testing.T) {
	const n = 4
	vals := []uint32{0b1110, 0b0111, 0b1111, 0b1011}
	var mu sync.Mutex
	gotAnd := map[int]uint32{}
	gotOr := map[int]uint32{}
	world(t, 1, n, func(c *Comm) error {
		a := []uint32{vals[c.Rank()]}
		if err := Allreduce(c, a, OpBAnd); err != nil {
			return err
		}
		o := []uint32{vals[c.Rank()]}
		if err := Allreduce(c, o, OpBOr); err != nil {
			return err
		}
		mu.Lock()
		gotAnd[c.Rank()] = a[0]
		gotOr[c.Rank()] = o[0]
		mu.Unlock()
		return nil
	})
	for r := 0; r < n; r++ {
		if gotAnd[r] != 0b0010 {
			t.Fatalf("band rank %d = %b, want 0010", r, gotAnd[r])
		}
		if gotOr[r] != 0b1111 {
			t.Fatalf("bor rank %d = %b, want 1111", r, gotOr[r])
		}
	}
}

// Property: allreduce(sum) equals the serial elementwise sum for random
// vectors and random communicator sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64, sz uint8, ln uint16) bool {
		n := int(sz%7) + 1
		elems := int(ln%512) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, n)
		want := make([]float64, elems)
		for r := range inputs {
			inputs[r] = make([]float64, elems)
			for i := range inputs[r] {
				inputs[r][i] = float64(rng.Intn(2000) - 1000)
				want[i] += inputs[r][i]
			}
		}
		okAll := true
		var mu sync.Mutex
		world(t, 1, n, func(c *Comm) error {
			data := append([]float64(nil), inputs[c.Rank()]...)
			if err := Allreduce(c, data, OpSum); err != nil {
				return err
			}
			for i := range data {
				if data[i] != want[i] {
					mu.Lock()
					okAll = false
					mu.Unlock()
					break
				}
			}
			return nil
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2, 5} {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			var mu sync.Mutex
			got := map[int][]int64{}
			world(t, 2, 3, func(c *Comm) error {
				data := make([]int64, 10)
				if c.Rank() == root {
					for i := range data {
						data[i] = int64(100 + i)
					}
				}
				if err := Bcast(c, data, root); err != nil {
					return err
				}
				mu.Lock()
				got[c.Rank()] = data
				mu.Unlock()
				return nil
			})
			for r, data := range got {
				for i, v := range data {
					if v != int64(100+i) {
						t.Fatalf("rank %d elem %d = %d, want %d", r, i, v, 100+i)
					}
				}
			}
		})
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	world(t, 1, 2, func(c *Comm) error {
		err := Bcast(c, []int{1}, 9)
		if err == nil {
			return fmt.Errorf("Bcast with invalid root should fail")
		}
		return nil
	})
}

func TestReduce(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	var rootResult []float32
	world(t, 2, 3, func(c *Comm) error {
		data := []float32{float32(c.Rank() + 1), 2}
		if err := Reduce(c, data, OpSum, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			mu.Lock()
			rootResult = data
			mu.Unlock()
		}
		return nil
	})
	if rootResult[0] != 21 || rootResult[1] != 12 {
		t.Fatalf("root result = %v, want [21 12]", rootResult)
	}
	_ = n
}

func TestAllgather(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	got := map[int][]int32{}
	world(t, 2, 3, func(c *Comm) error {
		send := []int32{int32(c.Rank() * 10), int32(c.Rank()*10 + 1)}
		recv := make([]int32, 2*n)
		if err := Allgather(c, send, recv); err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = recv
		mu.Unlock()
		return nil
	})
	for r := 0; r < n; r++ {
		for b := 0; b < n; b++ {
			if got[r][2*b] != int32(b*10) || got[r][2*b+1] != int32(b*10+1) {
				t.Fatalf("rank %d block %d = %v", r, b, got[r][2*b:2*b+2])
			}
		}
	}
}

func TestAllgatherLengthMismatch(t *testing.T) {
	world(t, 1, 2, func(c *Comm) error {
		if err := Allgather(c, []int{1}, make([]int, 5)); err == nil {
			return fmt.Errorf("length mismatch should error")
		}
		return nil
	})
}

func TestAllgatherv(t *testing.T) {
	const n = 4
	counts := []int{1, 3, 0, 2}
	var mu sync.Mutex
	got := map[int][]float64{}
	world(t, 1, n, func(c *Comm) error {
		send := make([]float64, counts[c.Rank()])
		for i := range send {
			send[i] = float64(c.Rank())*100 + float64(i)
		}
		total := 0
		for _, ct := range counts {
			total += ct
		}
		recv := make([]float64, total)
		if err := Allgatherv(c, send, counts, recv); err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = recv
		mu.Unlock()
		return nil
	})
	want := []float64{0, 100, 101, 102, 300, 301}
	for r := 0; r < n; r++ {
		for i, v := range want {
			if got[r][i] != v {
				t.Fatalf("rank %d recv = %v, want %v", r, got[r], want)
			}
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	var gathered []int
	scattered := map[int][]int{}
	world(t, 1, n, func(c *Comm) error {
		send := []int{c.Rank() * 2, c.Rank()*2 + 1}
		var recv []int
		if c.Rank() == 1 {
			recv = make([]int, 2*n)
		}
		if err := Gather(c, send, recv, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			mu.Lock()
			gathered = recv
			mu.Unlock()
		}
		// Scatter back from rank 1.
		out := make([]int, 2)
		var src []int
		if c.Rank() == 1 {
			src = recv
		}
		if err := Scatter(c, src, out, 1); err != nil {
			return err
		}
		mu.Lock()
		scattered[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	for i := 0; i < 2*n; i++ {
		if gathered[i] != i {
			t.Fatalf("gathered = %v", gathered)
		}
	}
	for r := 0; r < n; r++ {
		if scattered[r][0] != r*2 || scattered[r][1] != r*2+1 {
			t.Fatalf("scattered[%d] = %v", r, scattered[r])
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	world(t, 2, 2, func(c *Comm) error {
		// Rank 0 is slow; after the barrier everyone's clock must be at
		// least rank 0's pre-barrier time.
		if c.Rank() == 0 {
			c.Compute(1.0)
		}
		if err := Barrier(c); err != nil {
			return err
		}
		if c.Now() < 1.0 {
			return fmt.Errorf("rank %d clock %v after barrier, want >= 1.0", c.Rank(), c.Now())
		}
		return nil
	})
}

func TestAllreduceVirtualCostScalesWithBytes(t *testing.T) {
	timeFor := func(bytes int64) float64 {
		var mu sync.Mutex
		var maxT float64
		world(t, 4, 1, func(c *Comm) error {
			if err := AllreduceVirtual(c, bytes); err != nil {
				return err
			}
			mu.Lock()
			if c.Now() > maxT {
				maxT = c.Now()
			}
			mu.Unlock()
			return nil
		})
		return maxT
	}
	small := timeFor(1 << 20)
	big := timeFor(64 << 20)
	if big <= small {
		t.Fatalf("virtual allreduce cost should grow with size: %v vs %v", small, big)
	}
	// Ring allreduce moves ~2x the buffer; cost ratio should be roughly
	// proportional to bytes (within 3x slack for latency terms).
	if big > small*64*3 || big < small*64/3 {
		t.Fatalf("cost scaling off: small=%v big=%v ratio=%v, want ~64x", small, big, big/small)
	}
}

func TestSendRecvP2P(t *testing.T) {
	world(t, 1, 3, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return Send(c, 2, 11, []float32{1, 2, 3})
		case 2:
			data, err := Recv[float32](c, 0, 11)
			if err != nil {
				return err
			}
			if len(data) != 3 || data[1] != 2 {
				return fmt.Errorf("p2p recv = %v", data)
			}
			return nil
		}
		return nil
	})
}

func TestSendCopiesData(t *testing.T) {
	world(t, 1, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			if err := Send(c, 1, 1, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutate after send; receiver must see 1
			return nil
		}
		data, err := Recv[int](c, 0, 1)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("send did not copy: got %v", data)
		}
		return nil
	})
}

func TestSendRecvVal(t *testing.T) {
	type cfgMsg struct {
		Epoch int
		LR    float64
	}
	world(t, 1, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return SendVal(c, 1, 4, cfgMsg{Epoch: 7, LR: 0.1})
		}
		v, err := RecvVal[cfgMsg](c, 0, 4)
		if err != nil {
			return err
		}
		if v.Epoch != 7 || v.LR != 0.1 {
			return fmt.Errorf("RecvVal = %+v", v)
		}
		return nil
	})
}

func TestSendrecvRing(t *testing.T) {
	const n = 4
	world(t, 1, n, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		got, err := Sendrecv(c, right, 3, []int{c.Rank()}, left, 3)
		if err != nil {
			return err
		}
		if got[0] != left {
			return fmt.Errorf("rank %d got %v, want %d", c.Rank(), got, left)
		}
		return nil
	})
}

func TestCommBasics(t *testing.T) {
	world(t, 2, 3, func(c *Comm) error {
		if c.Size() != 6 {
			return fmt.Errorf("Size = %d", c.Size())
		}
		if c.ID() != WorldID {
			return fmt.Errorf("ID = %d", c.ID())
		}
		if c.ProcOf(c.Rank()) != c.Proc().ID() {
			return fmt.Errorf("ProcOf(self) mismatch")
		}
		if got := len(c.Procs()); got != 6 {
			return fmt.Errorf("Procs len = %d", got)
		}
		if c.Revoked() {
			return fmt.Errorf("fresh comm revoked")
		}
		if got := c.FailedRanks(); len(got) != 0 {
			return fmt.Errorf("fresh comm failed ranks = %v", got)
		}
		return nil
	})
}

func TestWorldRequiresMembership(t *testing.T) {
	c := simnet.New(simnet.Config{
		Nodes: 1, ProcsPerNode: 2,
		IntraNodeLatency: 1e-6, InterNodeLatency: 3e-6,
		IntraNodeBandwidth: 1e9, InterNodeBandwidth: 1e9,
	})
	p := Attach(c.Endpoint(0))
	if _, err := World(p, []simnet.ProcID{1}); err == nil {
		t.Fatal("World without self should fail")
	}
}
