package mpi

import (
	"fmt"
	"strings"

	"repro/internal/transport"
)

// Chunk-pipelined ring allreduce. The plain ring moves one whole segment
// per step and fully serializes each step's send against its receive; the
// pipelined variant splits every segment into K chunks and overlaps the
// send of chunk k with the receive (and local reduction) of chunk k-1, so
// both directions of the ring — and the reduction ALU — stay busy within a
// step. This is the standard bucket pipelining NCCL and Horovod apply on
// top of the ring schedule; over the TCP backend it also bounds the frame
// size a single Send must assemble.
//
// Chunks of one step travel on the step's collective tag in posting order,
// and both transports deliver same-(source, tag) messages FIFO, so no
// per-chunk tag plane is needed — the same ordering argument the plain
// ring already relies on across steps.

// phases for the pipelined ring (see collectives.go / collectives2.go for
// the rest of the phase space).
const (
	phPipeRS = 13
	phPipeAG = 14
)

// DefaultPipelineChunks is the segment split factor K used by
// AllreducePipelinedRing. Four chunks is enough to hide the send/recv
// turnaround without shrinking frames into the latency-dominated regime.
const DefaultPipelineChunks = 4

// AllreducePipelinedRing is the chunk-pipelined ring allreduce with the
// default split factor. It produces bit-identical results to Allreduce's
// ring path: pipelining reorders the schedule, not the per-element
// reduction order.
func AllreducePipelinedRing[T Number](c *Comm, data []T, op Op) error {
	return AllreducePipelinedRingChunks(c, data, op, DefaultPipelineChunks)
}

// AllreducePipelinedRingChunks is AllreducePipelinedRing with an explicit
// chunk count K >= 1 (K = 1 degenerates to the plain ring schedule).
// Segment and chunk bounds are computed identically at every rank, so the
// schedule works for any n, including n not divisible by Size()*K and
// n < Size() (empty chunks travel as empty frames).
func AllreducePipelinedRingChunks[T Number](c *Comm, data []T, op Op, chunks int) error {
	return c.allreducePipelined(numBuf[T]{v: data}, op, chunks)
}

func (c *Comm) allreducePipelined(b buf, op Op, chunks int) error {
	seq := c.nextSeq()
	if err := c.checkCollective(); err != nil {
		return err
	}
	if chunks < 1 {
		return fmt.Errorf("mpi: pipelined allreduce: chunk count %d < 1", chunks)
	}
	if c.Size() == 1 {
		return nil
	}
	scope := &opScope{comm: c, members: c.memberSet(), abortOnRevoke: true}
	c.p.begin(scope)
	defer c.p.end()

	bounds := evenBounds(b.length(), c.Size())
	if err := c.reduceScatterRingPipelined(b, op, bounds, seq, chunks); err != nil {
		return err
	}
	markDistribute(b)
	return c.ringAllgatherPipelined(b, bounds, seq, chunks)
}

// PipelineChunksFor picks the chunk split factor K for a pipelined ring
// allreduce of totalBytes across world ranks. Each ring step moves one
// segment of totalBytes/world; splitting it into ~pipelineTargetChunk
// pieces keeps both ring directions busy without dropping frames into
// the latency-dominated regime. Small segments get K=1 — the plain ring
// schedule — which is what fixes the static-K regression at 1 MiB: a
// 256 KiB segment split four ways made 64 KiB frames whose per-frame
// overhead outweighed the overlap.
func PipelineChunksFor(totalBytes int64, world int) int {
	if world <= 1 {
		return 1
	}
	seg := totalBytes / int64(world)
	k := int(seg / pipelineTargetChunk)
	if k < 1 {
		return 1
	}
	if k > maxPipelineChunks {
		return maxPipelineChunks
	}
	return k
}

// pipelineTargetChunk is the per-chunk frame payload PipelineChunksFor
// aims for; maxPipelineChunks caps the split so tiny chunks never
// dominate per-frame overhead.
const (
	pipelineTargetChunk = 512 << 10
	maxPipelineChunks   = 8
)

// reduceScatterRingPipelined is reduceScatterRing with each per-step
// segment split into K chunks: the send of chunk k overlaps the receive
// and reduction of chunk k-1. After p-1 steps rank r holds chunk (r+1)%p
// of the result, exactly as the plain ring leaves it.
func (c *Comm) reduceScatterRingPipelined(b buf, op Op, bounds []int, seq, K int) error {
	p, r := c.Size(), c.rank
	right, left := (r+1)%p, (r-1+p)%p
	tag := c.collTag(seq, phPipeRS)
	for step := 0; step < p-1; step++ {
		sc := (r - step + p) % p
		rc := (r - step - 1 + 2*p) % p
		slo, rlo := bounds[sc], bounds[rc]
		sb := evenBounds(bounds[sc+1]-slo, K)
		rb := evenBounds(bounds[rc+1]-rlo, K)
		for k := 0; k < K; k++ {
			lo, hi := slo+sb[k], slo+sb[k+1]
			if err := c.sendRaw(right, tag, b.extract(lo, hi), b.bytesFor(hi-lo)); err != nil {
				return err
			}
			transport.Hit(c.p.ep.ID(), transport.PointPipelineRSChunk)
			if k > 0 {
				m, err := c.recvRaw(left, tag)
				if err != nil {
					return err
				}
				b.reduceIn(rlo+rb[k-1], rlo+rb[k], m.Data, op)
			}
		}
		m, err := c.recvRaw(left, tag)
		if err != nil {
			return err
		}
		b.reduceIn(rlo+rb[K-1], rlo+rb[K], m.Data, op)
	}
	return nil
}

// ringAllgatherPipelined circulates the completed chunks with the same
// K-way send/recv overlap; starting segment (r+1)%p matches the chunk the
// pipelined reduce-scatter completed at this rank.
func (c *Comm) ringAllgatherPipelined(b buf, bounds []int, seq, K int) error {
	p, r := c.Size(), c.rank
	right, left := (r+1)%p, (r-1+p)%p
	start := (r + 1) % p
	tag := c.collTag(seq, phPipeAG)
	for step := 0; step < p-1; step++ {
		sc := (start - step + 2*p) % p
		rc := (start - step - 1 + 2*p) % p
		slo, rlo := bounds[sc], bounds[rc]
		sb := evenBounds(bounds[sc+1]-slo, K)
		rb := evenBounds(bounds[rc+1]-rlo, K)
		for k := 0; k < K; k++ {
			lo, hi := slo+sb[k], slo+sb[k+1]
			if err := c.sendRaw(right, tag, b.extract(lo, hi), b.bytesFor(hi-lo)); err != nil {
				return err
			}
			transport.Hit(c.p.ep.ID(), transport.PointPipelineAGChunk)
			if k > 0 {
				m, err := c.recvRaw(left, tag)
				if err != nil {
					return err
				}
				b.setIn(rlo+rb[k-1], rlo+rb[k], m.Data)
			}
		}
		m, err := c.recvRaw(left, tag)
		if err != nil {
			return err
		}
		b.setIn(rlo+rb[K-1], rlo+rb[K], m.Data)
	}
	return nil
}

// --- algorithm selection -------------------------------------------------

// AllreduceAlgo selects an allreduce schedule for AllreduceWith. The zero
// value (AlgoAuto) is Allreduce's built-in ring/tree pick.
type AllreduceAlgo int

const (
	// AlgoAuto lets Allreduce pick: tree for latency-bound payloads, ring
	// for bandwidth-bound ones.
	AlgoAuto AllreduceAlgo = iota
	// AlgoRecursiveDoubling is the latency-optimal pairwise exchange.
	AlgoRecursiveDoubling
	// AlgoHierarchical reduces within nodes, rings across leaders.
	AlgoHierarchical
	// AlgoPipelinedRing is the chunk-pipelined bandwidth-optimal ring.
	AlgoPipelinedRing
	// AlgoRing is the plain ring schedule, forced even for payloads the
	// auto path would route to the tree (benchmarks and the tuner use it
	// to pin the exact algorithm).
	AlgoRing
)

// algoCount is the number of AllreduceAlgo values (array sizing).
const algoCount = int(AlgoRing) + 1

func (a AllreduceAlgo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoRecursiveDoubling:
		return "recdouble"
	case AlgoHierarchical:
		return "hier"
	case AlgoPipelinedRing:
		return "pipelined"
	case AlgoRing:
		return "ring"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// ParseAllreduceAlgo parses the flag spellings of the algorithm names
// (as accepted by cmd/elasticd's -allreduce flag).
func ParseAllreduceAlgo(s string) (AllreduceAlgo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return AlgoAuto, nil
	case "recdouble", "recursive-doubling":
		return AlgoRecursiveDoubling, nil
	case "hier", "hierarchical":
		return AlgoHierarchical, nil
	case "pipelined", "pipelined-ring":
		return AlgoPipelinedRing, nil
	case "ring":
		return AlgoRing, nil
	default:
		return AlgoAuto, fmt.Errorf("mpi: unknown allreduce algorithm %q (want auto, ring, recdouble, hier, or pipelined)", s)
	}
}

// AllreduceWith runs an allreduce with an explicitly selected schedule —
// kept as the compact dispatch the ablation harness, the Horovod
// backend, and cmd/elasticd share. It is AllreduceOpts with only the
// algorithm chosen.
func AllreduceWith[T Number](c *Comm, data []T, op Op, algo AllreduceAlgo) error {
	return AllreduceOpts(c, data, op, AllreduceOptions{Algo: algo})
}
