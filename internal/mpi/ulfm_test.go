package mpi

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func newTestCluster(nodes, ppn int) *simnet.Cluster {
	return simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         5,
	})
}

// TestCollectiveAbortsOnMidOperationFailure injects a failure while an
// allreduce is in flight: the victim never participates, and all
// survivors' operations must abort with a process-failure error instead of
// hanging — the property resilient collectives are built on.
func TestCollectiveAbortsOnMidOperationFailure(t *testing.T) {
	c := newTestCluster(2, 3)
	procs := c.Procs()
	const victim = 4
	var mu sync.Mutex
	failures := 0
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == victim {
			c.Kill(ep.ID()) // dies without participating
			return nil
		}
		data := make([]float32, 50000)
		err = Allreduce(c2f(comm), data, OpSum)
		if err == nil {
			return fmt.Errorf("rank %d: allreduce succeeded despite failure", rank)
		}
		if !IsProcFailed(err) {
			return fmt.Errorf("rank %d: got %v, want ProcFailedError", rank, err)
		}
		mu.Lock()
		failures++
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		if _, dead := simnet.IsPeerFailed(err); !dead {
			t.Fatal(err)
		}
	}
	if failures != 5 {
		t.Fatalf("%d survivors saw the failure, want 5", failures)
	}
}

func c2f(c *Comm) *Comm { return c }

// TestP2PUnaffectedByUnrelatedFailure checks ULFM's per-operation error
// semantics: point-to-point between live ranks keeps working on a
// communicator with failed (but unacknowledged) members.
func TestP2PUnaffectedByUnrelatedFailure(t *testing.T) {
	c := newTestCluster(1, 4)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		switch rank {
		case 3:
			c.Kill(ep.ID())
			return nil
		case 0:
			return Send(comm, 1, 9, []int{42})
		case 1:
			v, err := Recv[int](comm, 0, 9)
			if err != nil {
				return fmt.Errorf("p2p between live ranks failed: %w", err)
			}
			if v[0] != 42 {
				return fmt.Errorf("got %v", v)
			}
			return nil
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestRecvFromFailedRankErrors: a posted receive against a rank that dies
// must abort with ProcFailedError.
func TestRecvFromFailedRankErrors(t *testing.T) {
	c := newTestCluster(1, 2)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == 0 {
			c.Kill(ep.ID())
			return nil
		}
		_, err = Recv[int](comm, 0, 1)
		if !IsProcFailed(err) {
			return fmt.Errorf("got %v, want ProcFailedError", err)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestRevokeInterruptsBlockedOperations: rank 1 blocks in a receive that
// would never complete; rank 0 revokes; rank 1 must abort with
// RevokedError even though no process failed.
func TestRevokeInterruptsBlockedOperations(t *testing.T) {
	c := newTestCluster(1, 3)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		switch rank {
		case 0:
			comm.Revoke()
			if !comm.Revoked() {
				return fmt.Errorf("revoker does not see comm revoked")
			}
			return nil
		default:
			_, err = Recv[int](comm, 0, 1) // rank 0 never sends
			if !IsRevoked(err) {
				return fmt.Errorf("rank %d got %v, want RevokedError", rank, err)
			}
			if !comm.Revoked() {
				return fmt.Errorf("rank %d does not see comm revoked", rank)
			}
			return nil
		}
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestRevokePoisonsFutureCollectives: once revoked, new collectives on the
// communicator fail immediately.
func TestRevokePoisonsFutureCollectives(t *testing.T) {
	c := newTestCluster(1, 2)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		comm.Revoke()
		if err := Allreduce(comm, []float64{1}, OpSum); !IsRevoked(err) {
			return fmt.Errorf("collective on revoked comm: %v, want RevokedError", err)
		}
		if err := Barrier(comm); !IsRevoked(err) {
			return fmt.Errorf("barrier on revoked comm: %v, want RevokedError", err)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestAgreeUniformValue: all ranks must agree on the AND of contributions.
func TestAgreeUniformValue(t *testing.T) {
	c := newTestCluster(2, 3)
	procs := c.Procs()
	var mu sync.Mutex
	vals := map[int]uint32{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		flags := uint32(0xFF)
		if rank == 3 {
			flags = 0xF0
		}
		v, err := comm.Agree(flags)
		if err != nil {
			return err
		}
		mu.Lock()
		vals[rank] = v
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != 0xF0 {
			t.Fatalf("rank %d agreed on %#x, want 0xF0", r, v)
		}
	}
}

// TestAgreeSurvivesFailures kills ranks during the agreement (including
// the initial coordinator) and requires the survivors to return the same
// value.
func TestAgreeSurvivesFailures(t *testing.T) {
	for _, victims := range [][]int{{0}, {1}, {0, 1}, {2, 5}} {
		t.Run(fmt.Sprintf("victims%v", victims), func(t *testing.T) {
			c := newTestCluster(2, 3)
			procs := c.Procs()
			isVictim := map[int]bool{}
			for _, v := range victims {
				isVictim[v] = true
			}
			var mu sync.Mutex
			vals := map[int]uint32{}
			withErr := 0
			errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
				p := Attach(ep)
				comm, err := World(p, procs)
				if err != nil {
					return err
				}
				if isVictim[rank] {
					c.Kill(ep.ID())
					return nil
				}
				v, err := comm.Agree(1)
				if err != nil {
					if !IsProcFailed(err) {
						return err
					}
					// Unacked failure: value still uniform, error flagged.
					mu.Lock()
					withErr++
					mu.Unlock()
				}
				mu.Lock()
				vals[rank] = v
				mu.Unlock()
				return nil
			})
			if err := simnet.FirstError(errs); err != nil {
				t.Fatal(err)
			}
			if len(vals) != 6-len(victims) {
				t.Fatalf("%d survivors returned, want %d", len(vals), 6-len(victims))
			}
			var first uint32
			var got bool
			for _, v := range vals {
				if !got {
					first, got = v, true
					continue
				}
				if v != first {
					t.Fatalf("non-uniform agreement: %v", vals)
				}
			}
		})
	}
}

// TestAgreeAfterAckNoError: acknowledging failures first makes Agree
// return cleanly, per ULFM semantics.
func TestAgreeAfterAckNoError(t *testing.T) {
	c := newTestCluster(1, 3)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == 2 {
			c.Kill(ep.ID())
			return nil
		}
		// Trip over the failure first.
		if err := Barrier(comm); err == nil {
			return fmt.Errorf("barrier should fail")
		}
		comm.FailureAck()
		acked := comm.FailureGetAcked()
		if len(acked) != 1 || acked[0] != 2 {
			return fmt.Errorf("acked = %v, want [2]", acked)
		}
		if _, err := comm.Agree(1); err != nil {
			return fmt.Errorf("agree after ack: %v", err)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// TestAgreeUniformError: the ProcFailedError side-channel must be as
// uniform as the agreed value. Rank 1 privately knows (and has acked) a
// failure the others have never heard of; the unacked bit the coordinator
// raises on first sight must reach every member through the decision, so
// either all six ranks report ProcFailedError or none do — a local acked
// lookup would split them, and on a scenario's last collective the clean
// members would exit and strand the erroring ones in a repair nobody
// joins.
func TestAgreeUniformError(t *testing.T) {
	c := newTestCluster(2, 3)
	procs := c.Procs()
	var mu sync.Mutex
	vals := map[int]uint32{}
	failedAt := map[int]bool{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == 1 {
			// Private, already-acknowledged failure knowledge about rank 5
			// (which is in fact alive and participating).
			p.noteFailure(procs[5])
			comm.FailureAck()
		}
		v, err := comm.Agree(1)
		if err != nil && !IsProcFailed(err) {
			return err
		}
		mu.Lock()
		vals[rank] = v
		failedAt[rank] = err != nil
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != vals[0] {
			t.Fatalf("rank %d agreed on %#x, others on %#x", r, v, vals[0])
		}
	}
	n := 0
	for _, f := range failedAt {
		if f {
			n++
		}
	}
	if n != 0 && n != len(failedAt) {
		t.Fatalf("ProcFailedError at %d of %d ranks; must be all or none: %v", n, len(failedAt), failedAt)
	}
	if n == 0 {
		t.Fatalf("expected the injected unacked failure to surface as a uniform ProcFailedError")
	}
}

// TestShrinkProducesWorkingComm: revoke + shrink after a failure, then run
// a full allreduce on the survivor communicator.
func TestShrinkProducesWorkingComm(t *testing.T) {
	c := newTestCluster(2, 3)
	procs := c.Procs()
	const victim = 2
	var mu sync.Mutex
	sums := map[int]float64{}
	ids := map[int]uint64{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == victim {
			c.Kill(ep.ID())
			return nil
		}
		if err := Barrier(comm); err == nil {
			return fmt.Errorf("rank %d: barrier should fail", rank)
		}
		comm.Revoke()
		comm.FailureAck()
		newComm, err := comm.Shrink()
		if err != nil {
			return fmt.Errorf("rank %d shrink: %w", rank, err)
		}
		if newComm.Size() != 5 {
			return fmt.Errorf("rank %d: shrunk size %d, want 5", rank, newComm.Size())
		}
		if newComm.Revoked() {
			return fmt.Errorf("shrunk comm inherited revocation")
		}
		data := []float64{1}
		if err := Allreduce(newComm, data, OpSum); err != nil {
			return fmt.Errorf("rank %d allreduce on shrunk comm: %w", rank, err)
		}
		mu.Lock()
		sums[rank] = data[0]
		ids[rank] = newComm.ID()
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 5 {
		t.Fatalf("%d survivors finished, want 5", len(sums))
	}
	var firstID uint64
	for r, s := range sums {
		if s != 5 {
			t.Fatalf("rank %d sum = %v, want 5", r, s)
		}
		if firstID == 0 {
			firstID = ids[r]
		} else if ids[r] != firstID {
			t.Fatalf("context ids diverged: %v", ids)
		}
	}
	if firstID == WorldID {
		t.Fatal("shrunk comm kept the world context id")
	}
}

// TestShrinkPreservesRankOrder: survivor ranks keep their relative order.
func TestShrinkPreservesRankOrder(t *testing.T) {
	c := newTestCluster(1, 5)
	procs := c.Procs()
	var mu sync.Mutex
	newRanks := map[int]int{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if rank == 1 {
			c.Kill(ep.ID())
			return nil
		}
		comm.Revoke()
		nc, err := comm.Shrink()
		if err != nil {
			return err
		}
		mu.Lock()
		newRanks[rank] = nc.Rank()
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 0, 2: 1, 3: 2, 4: 3}
	for old, nw := range want {
		if newRanks[old] != nw {
			t.Fatalf("old rank %d -> %d, want %d (all: %v)", old, newRanks[old], nw, newRanks)
		}
	}
}

// TestGrowAdmitsNewWorkers: spawn two processes and merge them into a new
// communicator; everyone then allreduces together.
func TestGrowAdmitsNewWorkers(t *testing.T) {
	c := newTestCluster(1, 3)
	orig := c.Procs()
	ep1, err := c.Spawn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := c.Spawn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	newProcs := []simnet.ProcID{ep1.ID(), ep2.ID()}

	var mu sync.Mutex
	sums := map[simnet.ProcID]float64{}
	g := simnet.NewGroup()
	for i, id := range orig {
		rank := i
		g.Go(c.Endpoint(id), func(ep *simnet.Endpoint) error {
			p := Attach(ep)
			comm, err := World(p, orig)
			if err != nil {
				return err
			}
			_ = rank
			grown, err := comm.Grow(newProcs)
			if err != nil {
				return err
			}
			if grown.Size() != 5 {
				return fmt.Errorf("grown size = %d", grown.Size())
			}
			data := []float64{1}
			if err := Allreduce(grown, data, OpSum); err != nil {
				return err
			}
			mu.Lock()
			sums[ep.ID()] = data[0]
			mu.Unlock()
			return nil
		})
	}
	for _, ep := range []*simnet.Endpoint{ep1, ep2} {
		g.Go(ep, func(ep *simnet.Endpoint) error {
			p := Attach(ep)
			comm, err := Join(p)
			if err != nil {
				return err
			}
			if comm.Size() != 5 {
				return fmt.Errorf("joined size = %d", comm.Size())
			}
			if comm.Rank() < 3 {
				return fmt.Errorf("newcomer got rank %d, want >= 3", comm.Rank())
			}
			data := []float64{1}
			if err := Allreduce(comm, data, OpSum); err != nil {
				return err
			}
			mu.Lock()
			sums[ep.ID()] = data[0]
			mu.Unlock()
			return nil
		})
	}
	if err := simnet.FirstError(g.Wait()); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 5 {
		t.Fatalf("%d participants finished, want 5", len(sums))
	}
	for id, s := range sums {
		if s != 5 {
			t.Fatalf("proc %d sum = %v, want 5", id, s)
		}
	}
}

// Property: agreement returns a uniform value at all survivors for random
// failure patterns injected concurrently with the protocol.
func TestAgreeUniformityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6) // 3..8 ranks
		nVictims := rng.Intn(n - 1)
		victims := map[int]bool{}
		for len(victims) < nVictims {
			victims[rng.Intn(n)] = true
		}
		c := simnet.New(simnet.Config{
			Nodes: 1, ProcsPerNode: n,
			IntraNodeLatency: 1e-6, InterNodeLatency: 3e-6,
			IntraNodeBandwidth: 1e9, InterNodeBandwidth: 1e9,
			DetectLatency: 1e-3,
		})
		procs := c.Procs()
		var mu sync.Mutex
		vals := map[int]uint32{}
		errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
			p := Attach(ep)
			comm, err := World(p, procs)
			if err != nil {
				return err
			}
			if victims[rank] {
				c.Kill(ep.ID())
				return nil
			}
			v, err := comm.Agree(uint32(1 << uint(rank%8)))
			if err != nil && !IsProcFailed(err) {
				return err
			}
			mu.Lock()
			vals[rank] = v
			mu.Unlock()
			return nil
		})
		if err := simnet.FirstError(errs); err != nil {
			return false
		}
		if len(vals) != n-len(victims) {
			return false
		}
		var first uint32
		got := false
		for _, v := range vals {
			if !got {
				first, got = v, true
			} else if v != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestResilientAllreduceRetryPattern exercises the paper's core loop
// end-to-end at the MPI level: allreduce fails mid-flight, survivors
// revoke + ack + shrink, then repeat the allreduce with their own
// contributions, all without re-computing anything.
func TestResilientAllreduceRetryPattern(t *testing.T) {
	c := newTestCluster(2, 3)
	procs := c.Procs()
	const victim = 3
	var mu sync.Mutex
	results := map[int]float64{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		grad := []float64{float64(rank + 1)} // this rank's contribution
		if rank == victim {
			c.Kill(ep.ID())
			return nil
		}
		work := append([]float64(nil), grad...)
		err = Allreduce(comm, work, OpSum)
		if err == nil {
			return fmt.Errorf("rank %d: expected the first allreduce to fail", rank)
		}
		if !IsFault(err) {
			return err
		}
		comm.Revoke()
		comm.FailureAck()
		shrunk, err := comm.Shrink()
		if err != nil {
			return err
		}
		// Retry with original contribution — forward recovery.
		work = append([]float64(nil), grad...)
		if err := Allreduce(shrunk, work, OpSum); err != nil {
			return err
		}
		mu.Lock()
		results[rank] = work[0]
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	// Survivor ranks: 0,1,2,4,5 -> contributions 1+2+3+5+6 = 17.
	for r, v := range results {
		if v != 17 {
			t.Fatalf("rank %d retried allreduce = %v, want 17", r, v)
		}
	}
}

// TestNodeFailureShrink drops a whole node (paper's node-level policy).
func TestNodeFailureShrink(t *testing.T) {
	c := newTestCluster(4, 3)
	procs := c.Procs()
	var mu sync.Mutex
	sizes := map[int]int{}
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := Attach(ep)
		comm, err := World(p, procs)
		if err != nil {
			return err
		}
		if ep.Node() == 1 {
			if rank%3 == 0 {
				c.KillNode(1)
			}
			return nil
		}
		if err := Barrier(comm); err == nil {
			return fmt.Errorf("rank %d: barrier should fail", rank)
		}
		comm.Revoke()
		comm.FailureAck()
		shrunk, err := comm.Shrink()
		if err != nil {
			return err
		}
		mu.Lock()
		sizes[rank] = shrunk.Size()
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 9 {
		t.Fatalf("%d survivors shrank, want 9", len(sizes))
	}
	for r, s := range sizes {
		if s != 9 {
			t.Fatalf("rank %d shrunk to %d, want 9", r, s)
		}
	}
}
