// Package vtime provides virtual clocks for the simulated cluster.
//
// Every simulated process owns a Clock that tracks its position on a
// virtual timeline measured in seconds. Computation advances the clock by
// a duration; receiving a message advances it to the message's arrival
// time (LogP-style simulation). Clocks are safe for concurrent reads so
// that observers (the experiment harness) can sample progress, but only
// the owning goroutine should advance them.
package vtime

import (
	"math"
	"sync/atomic"
)

// Clock is a monotonically non-decreasing virtual clock. The zero value is
// a clock at time 0, ready to use.
type Clock struct {
	bits atomic.Uint64 // math.Float64bits of the current time in seconds
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Advance moves the clock forward by d seconds. Negative d is ignored so
// that cost formulas may safely produce tiny negative rounding artifacts.
func (c *Clock) Advance(d float64) {
	if d <= 0 {
		return
	}
	c.set(c.Now() + d)
}

// AdvanceTo moves the clock to t if t is later than the current time.
// It returns the resulting time.
func (c *Clock) AdvanceTo(t float64) float64 {
	now := c.Now()
	if t > now {
		c.set(t)
		return t
	}
	return now
}

// Set forces the clock to t even if t is in the past. It is intended for
// harnesses that reset clocks between experiment repetitions.
func (c *Clock) Set(t float64) {
	c.set(t)
}

func (c *Clock) set(t float64) {
	c.bits.Store(math.Float64bits(t))
}

// Max returns the latest time among the given clocks, or 0 if none.
func Max(clocks ...*Clock) float64 {
	var m float64
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// Stopwatch measures elapsed virtual time on a clock between Start and
// Elapsed calls. It is a convenience for phase cost accounting.
type Stopwatch struct {
	clock *Clock
	start float64
}

// NewStopwatch returns a stopwatch running against clk, started now.
func NewStopwatch(clk *Clock) *Stopwatch {
	return &Stopwatch{clock: clk, start: clk.Now()}
}

// Restart resets the stopwatch origin to the clock's current time.
func (s *Stopwatch) Restart() {
	s.start = s.clock.Now()
}

// Elapsed returns the virtual seconds elapsed since the last (re)start.
func (s *Stopwatch) Elapsed() float64 {
	return s.clock.Now() - s.start
}

// Lap returns the elapsed time and restarts the stopwatch, so consecutive
// laps partition the timeline into contiguous phases.
func (s *Stopwatch) Lap() float64 {
	now := s.clock.Now()
	d := now - s.start
	s.start = now
	return d
}
