package vtime

import "time"

// WaitUntil polls cond until it reports true or the wall-clock deadline
// d elapses, and returns cond's final value. It is the sanctioned
// replacement for time.Sleep in tests (enforced by the sleepytest
// analyzer): a test that needs "the detector has marked the peer
// suspect" or "every pooled buffer is back" states the condition and a
// generous bound instead of guessing a scheduling latency, so the test
// is immune to CI load while finishing as soon as the condition holds.
//
// The poll interval is 1ms: coarse enough not to spin, fine enough that
// the wait adds at most one tick beyond the condition becoming true.
func WaitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(time.Millisecond)
	}
}
