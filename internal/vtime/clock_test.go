package vtime

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	if got := c.Now(); got != 1.5 {
		t.Fatalf("Now() = %v, want 1.5", got)
	}
	c.Advance(0.5)
	if got := c.Now(); got != 2.0 {
		t.Fatalf("Now() = %v, want 2.0", got)
	}
}

func TestAdvanceIgnoresNonPositive(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.Advance(0)
	c.Advance(-7)
	if got := c.Now(); got != 3 {
		t.Fatalf("Now() = %v, want 3 (negative/zero advances ignored)", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	if got := c.AdvanceTo(4); got != 4 {
		t.Fatalf("AdvanceTo(4) = %v, want 4", got)
	}
	// Going backwards is a no-op.
	if got := c.AdvanceTo(2); got != 4 {
		t.Fatalf("AdvanceTo(2) = %v, want clock to stay at 4", got)
	}
	if got := c.Now(); got != 4 {
		t.Fatalf("Now() = %v, want 4", got)
	}
}

func TestSetMovesBackwards(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Set(1)
	if got := c.Now(); got != 1 {
		t.Fatalf("Now() after Set(1) = %v, want 1", got)
	}
}

func TestMax(t *testing.T) {
	var a, b, c Clock
	a.Advance(1)
	b.Advance(5)
	c.Advance(3)
	if got := Max(&a, &b, &c); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := Max(); got != 0 {
		t.Fatalf("Max() with no clocks = %v, want 0", got)
	}
}

func TestStopwatchLap(t *testing.T) {
	var c Clock
	sw := NewStopwatch(&c)
	c.Advance(2)
	if got := sw.Lap(); got != 2 {
		t.Fatalf("Lap = %v, want 2", got)
	}
	c.Advance(3)
	if got := sw.Elapsed(); got != 3 {
		t.Fatalf("Elapsed = %v, want 3", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed after Restart = %v, want 0", got)
	}
}

// Property: clock is monotonic under any sequence of Advance/AdvanceTo.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []float64) bool {
		var c Clock
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(s)
			} else {
				c.AdvanceTo(s)
			}
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers must be race-free while the owner advances.
func TestClockConcurrentReads(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Now()
				}
			}
		}()
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Advance(r.Float64())
	}
	close(stop)
	wg.Wait()
	if c.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}
