package ulfm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/simnet"
)

func testCluster(nodes, ppn int) *simnet.Cluster {
	return simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         2,
	})
}

// runWorld runs body at every rank over a fresh world, with a harness
// barrier helper for deterministic failure injection.
func runWorld(t *testing.T, c *simnet.Cluster, body func(rank int, r *ResilientComm, sync func()) error) map[simnet.ProcID]error {
	t.Helper()
	procs := c.Procs()
	var wg sync.WaitGroup
	wg.Add(len(procs))
	barrier := func() { wg.Done(); wg.Wait() }
	return simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		r := New(comm, c, DefaultPolicy())
		return body(rank, r, barrier)
	})
}

func TestAllreduceNoFailures(t *testing.T) {
	c := testCluster(2, 2)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, _ func()) error {
		data := []float64{float64(rank + 1)}
		if err := Allreduce(r, data, mpi.OpSum); err != nil {
			return err
		}
		if data[0] != 10 {
			return fmt.Errorf("sum = %v", data[0])
		}
		if len(r.Events()) != 0 {
			return fmt.Errorf("no repairs expected")
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSurvivesFailure(t *testing.T) {
	c := testCluster(2, 3)
	var mu sync.Mutex
	results := map[int]float64{}
	reconfigured := 0
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		r.policy.OnReconfigure = func(nc *mpi.Comm, bd *metrics.Breakdown) {
			mu.Lock()
			reconfigured++
			mu.Unlock()
		}
		barrier()
		if rank == 2 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		data := []float64{float64(rank + 1)}
		if err := Allreduce(r, data, mpi.OpSum); err != nil {
			return err
		}
		// Survivors contribute 1+2+4+5+6 = 18.
		if data[0] != 18 {
			return fmt.Errorf("rank %d: sum = %v, want 18", rank, data[0])
		}
		if r.Size() != 5 {
			return fmt.Errorf("size = %d after repair", r.Size())
		}
		if len(r.Events()) != 1 {
			return fmt.Errorf("events = %d", len(r.Events()))
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	_ = results
	if reconfigured != 5 {
		t.Fatalf("OnReconfigure fired %d times, want 5", reconfigured)
	}
}

func TestNodeDropPolicyRemovesCoLocated(t *testing.T) {
	c := testCluster(2, 3)
	var mu sync.Mutex
	dropped, kept := 0, 0
	procs := c.Procs()
	var wg sync.WaitGroup
	wg.Add(len(procs))
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		pol := DefaultPolicy()
		pol.Drop = failure.KillNode
		r := New(comm, c, pol)
		wg.Done()
		wg.Wait()
		if rank == 4 { // node 1
			c.Kill(ep.ID())
			return nil
		}
		data := []float64{1}
		err = Allreduce(r, data, mpi.OpSum)
		if errors.Is(err, ErrDropped) {
			if ep.Node() != 1 {
				return fmt.Errorf("rank %d on node %d dropped unexpectedly", rank, ep.Node())
			}
			mu.Lock()
			dropped++
			mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		if data[0] != 3 || r.Size() != 3 {
			return fmt.Errorf("rank %d: sum=%v size=%d, want 3/3", rank, data[0], r.Size())
		}
		mu.Lock()
		kept++
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	if dropped != 2 || kept != 3 {
		t.Fatalf("dropped=%d kept=%d, want 2/3", dropped, kept)
	}
}

func TestBarrierSurvivesFailure(t *testing.T) {
	c := testCluster(1, 4)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		barrier()
		if rank == 1 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		if err := Barrier(r); err != nil {
			return err
		}
		if r.Size() != 3 {
			return fmt.Errorf("size = %d", r.Size())
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestBcastSurvivesNonRootFailure(t *testing.T) {
	c := testCluster(1, 4)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		barrier()
		if rank == 3 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		data := make([]int64, 4)
		if rank == 0 {
			for i := range data {
				data[i] = int64(i + 10)
			}
		}
		if err := Bcast(r, data, 0); err != nil {
			return err
		}
		if data[2] != 12 {
			return fmt.Errorf("rank %d: data = %v", rank, data)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestBcastRootFailureReported(t *testing.T) {
	c := testCluster(1, 3)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		barrier()
		if rank == 0 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		data := make([]int64, 2)
		err := Bcast(r, data, 0)
		if err == nil {
			return fmt.Errorf("rank %d: bcast from dead root should fail", rank)
		}
		if mpi.IsFault(err) {
			return fmt.Errorf("rank %d: root failure should surface as a usage error after repair, got %v", rank, err)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherResizesRecv(t *testing.T) {
	c := testCluster(1, 4)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		barrier()
		if rank == 2 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		out, err := Allgather(r, []int64{int64(rank)}, func(size int) []int64 {
			return make([]int64, size)
		})
		if err != nil {
			return err
		}
		if len(out) != 3 {
			return fmt.Errorf("rank %d: out = %v", rank, out)
		}
		// Survivor ranks 0,1,3 in order.
		if out[0] != 0 || out[1] != 1 || out[2] != 3 {
			return fmt.Errorf("rank %d: out = %v", rank, out)
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSequentialFailures(t *testing.T) {
	// Two failures across two operations: each op repairs once, and the
	// final membership reflects both losses.
	c := testCluster(1, 5)
	procs := c.Procs()
	var wg, wg2 sync.WaitGroup
	wg.Add(len(procs))
	wg2.Add(len(procs) - 1)
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		r := New(comm, c, DefaultPolicy())
		wg.Done()
		wg.Wait()
		if rank == 1 {
			c.Kill(ep.ID())
			return nil
		}
		data := []float64{1}
		if err := Allreduce(r, data, mpi.OpSum); err != nil {
			return fmt.Errorf("rank %d first: %w", rank, err)
		}
		if data[0] != 4 {
			return fmt.Errorf("rank %d first sum = %v", rank, data[0])
		}
		wg2.Done()
		wg2.Wait()
		if rank == 3 {
			c.Kill(ep.ID())
			return nil
		}
		data = []float64{1}
		if err := Allreduce(r, data, mpi.OpSum); err != nil {
			return fmt.Errorf("rank %d second: %w", rank, err)
		}
		if data[0] != 3 || r.Size() != 3 {
			return fmt.Errorf("rank %d second sum=%v size=%d", rank, data[0], r.Size())
		}
		if len(r.Events()) != 2 {
			return fmt.Errorf("rank %d events = %d, want 2", rank, len(r.Events()))
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func TestEventsBreakdownRecorded(t *testing.T) {
	c := testCluster(1, 3)
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		barrier()
		if rank == 1 {
			c.Kill(r.Comm().Proc().ID())
			return nil
		}
		if err := Allreduce(r, []float64{1}, mpi.OpSum); err != nil {
			return err
		}
		evs := r.Events()
		if len(evs) != 1 {
			return fmt.Errorf("events = %d", len(evs))
		}
		for _, ph := range []metrics.Phase{metrics.PhaseRevoke, metrics.PhaseAgree, metrics.PhaseShrink} {
			if evs[0].Get(ph) < 0 {
				return fmt.Errorf("phase %s missing", ph)
			}
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
