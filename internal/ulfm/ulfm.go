// Package ulfm packages the paper's resilient collective operations as a
// reusable library: a ResilientComm wraps an mpi.Comm and transparently
// applies the ULFM recovery pipeline — revoke, acknowledge, agree, shrink,
// optional node-drop — to any collective that fails, then retries it on
// the repaired communicator with the caller's original buffers.
//
// This is the abstraction Section 3.1 describes ("resilient collective
// operations serve as the primary method to handle any changes in worker
// size during training"): callers keep issuing collectives; membership
// changes surface only through the OnReconfigure callback. The training
// integration in internal/core inlines the same pipeline because it also
// coordinates replacement spawning and epoch-boundary merges; this package
// is the standalone form for other applications (iterative solvers,
// analytics) that just want collectives that survive failures.
package ulfm

import (
	"errors"
	"fmt"

	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// ErrDropped is returned when the node-drop policy removes the calling
// (alive) process from the communicator: the caller must stop using it.
var ErrDropped = errors.New("ulfm: this process was dropped by the node-drop policy")

// Advisor is the recovery-policy hook at the revoke→repair boundary
// (implemented by policy.Engine; the interface keeps this package free
// of the engine's obs/trace dependencies). Rank 0 of the shrunken
// communicator calls Advise and replicates the opaque code to the other
// members, who apply it through Adopt — the strategy is therefore
// uniform across ranks by construction. After the retried collective
// succeeds, the deciding rank reports the measured recovery cost
// through Realize so the engine can refine its cost model.
//
// The advice exchange is itself a collective over the shrunken
// communicator, so an advisor must be installed on either every member
// or none: a mixed membership would diverge at the exchange.
type Advisor interface {
	// Advise classifies the failure and picks a strategy at the deciding
	// rank. survivors is the post-shrink membership, dead the processes
	// the shrink removed. The returned code is replicated verbatim.
	Advise(now float64, survivors, dead []simnet.ProcID) (dropNode, rollback bool, code int64)
	// Adopt applies a replicated code at a non-deciding rank. Unknown
	// codes must degrade to (false, false) — plain shrink — everywhere.
	Adopt(now float64, survivors, dead []simnet.ProcID, code int64) (dropNode, rollback bool)
	// Realize reports the realized recovery seconds (repair pipeline +
	// retried collective) of the decision identified by code.
	Realize(now float64, code int64, realizedSeconds float64)
}

// Policy configures recovery behavior.
type Policy struct {
	// Drop selects the blast radius applied on top of the failed
	// processes: KillProcess removes only the dead; KillNode also removes
	// their nodes' survivors (the paper's runtime flag).
	Drop failure.Kind
	// MaxRetries bounds how many consecutive repairs a single operation
	// may attempt (each retry handles one additional failure event).
	MaxRetries int
	// OnReconfigure, if set, is called after every successful repair with
	// the new communicator and the cost breakdown of the recovery.
	OnReconfigure func(newComm *mpi.Comm, bd *metrics.Breakdown)
	// Advisor, if set, selects the recovery strategy per failure inside
	// the repair pipeline (overriding the static Drop for that repair).
	// It costs one extra small broadcast + agreement per repair — the
	// same uniformity price the retry loop already pays per operation.
	Advisor Advisor
}

// DefaultPolicy drops processes only and tolerates up to 8 failures per
// operation.
func DefaultPolicy() Policy {
	return Policy{Drop: failure.KillProcess, MaxRetries: 8}
}

// pendingPolicy tracks an adopted policy decision across the repair(s)
// and the retried collective, so the realized cost reported to the
// advisor covers the whole recovery (cascades accumulate every repair
// into the final decision's realization).
type pendingPolicy struct {
	code     int64
	decided  bool // this member ran Advise (it owns the Realize)
	realized float64
}

// ResilientComm is a self-repairing communicator.
type ResilientComm struct {
	comm       *mpi.Comm
	cluster    *simnet.Cluster
	policy     Policy
	events     []*metrics.Breakdown
	pendingPol *pendingPolicy
	rollback   bool // a rollback advice is armed (TakeRollback consumes)
}

// New wraps a communicator. The cluster handle is needed to resolve
// process→node placement for the node-drop policy.
func New(c *mpi.Comm, cluster *simnet.Cluster, policy Policy) *ResilientComm {
	if policy.MaxRetries <= 0 {
		policy.MaxRetries = 8
	}
	return &ResilientComm{comm: c, cluster: cluster, policy: policy}
}

// Comm returns the current underlying communicator (it changes across
// repairs).
func (r *ResilientComm) Comm() *mpi.Comm { return r.comm }

// Rank and Size reflect the current communicator.
func (r *ResilientComm) Rank() int { return r.comm.Rank() }
func (r *ResilientComm) Size() int { return r.comm.Size() }

// Events returns the recovery breakdowns recorded so far (one per repair).
func (r *ResilientComm) Events() []*metrics.Breakdown {
	return append([]*metrics.Breakdown(nil), r.events...)
}

// Allreduce is a resilient elementwise sum-reduction: on failure the
// communicator is repaired and the operation retried with the caller's
// original contribution, so survivors obtain the reduction over the
// surviving contributions — the paper's forward recovery.
func Allreduce[T mpi.Number](r *ResilientComm, data []T, op mpi.Op) error {
	return AllreduceWith(r, data, op, mpi.AlgoAuto)
}

// AllreduceWith is Allreduce with an explicit schedule selection (see
// mpi.AllreduceAlgo); every retry after a repair reuses the same
// algorithm over the shrunken world.
func AllreduceWith[T mpi.Number](r *ResilientComm, data []T, op mpi.Op, algo mpi.AllreduceAlgo) error {
	return AllreduceOpts(r, data, op, mpi.AllreduceOptions{Algo: algo})
}

// AllreduceOpts is Allreduce under explicit data-plane options (schedule,
// pipeline chunks, wire codec). Each retry restores the caller's original
// contribution and re-resolves the plan against the repaired communicator
// — a tuned pick or a size-derived chunk count renegotiates at the new
// world size, uniformly, because resolution happens inside the collective.
func AllreduceOpts[T mpi.Number](r *ResilientComm, data []T, op mpi.Op, o mpi.AllreduceOptions) error {
	orig := append([]T(nil), data...)
	return r.retry(func() error {
		copy(data, orig)
		return mpi.AllreduceOpts(r.comm, data, op, o)
	})
}

// AllreduceVirtual is the cost-model variant of Allreduce.
func AllreduceVirtual(r *ResilientComm, bytes int64) error {
	return r.retry(func() error {
		return mpi.AllreduceVirtual(r.comm, bytes)
	})
}

// Bcast resiliently broadcasts from the CURRENT rank `root`. If the root
// itself fails, the operation cannot be completed and the root's failure
// is reported to the caller after the repair (callers pick a new root).
func Bcast[T any](r *ResilientComm, data []T, root int) error {
	rootProc := r.comm.ProcOf(root)
	return r.retry(func() error {
		nr := r.rankOfProc(rootProc)
		if nr < 0 {
			return fmt.Errorf("ulfm: bcast root (proc %d) failed and was removed", rootProc)
		}
		return mpi.Bcast(r.comm, data, nr)
	})
}

// Barrier is a resilient barrier over the surviving members.
func Barrier(r *ResilientComm) error {
	return r.retry(func() error {
		return mpi.Barrier(r.comm)
	})
}

// Allgatherv resiliently gathers variable-length blocks. On a repair the
// caller's counts no longer match the membership, so the operation
// reports the repaired communicator through ErrReconfigured-style error
// (callers recompute counts); use Allgather on fixed-size blocks for
// transparent retries.
func Allgather[T any](r *ResilientComm, send []T, recvOf func(size int) []T) ([]T, error) {
	var out []T
	err := r.retry(func() error {
		out = recvOf(r.comm.Size())
		return mpi.Allgather(r.comm, send, out)
	})
	return out, err
}

// retry makes op a *uniform* resilient collective: after the raw
// operation, the members run a fault-tolerant agreement on its success.
// A failed collective can complete at some ranks while aborting at others
// (e.g. a broadcast root finishes its sends before the fault surfaces
// downstream); without the agreement, the completed ranks would move on
// and strand the failed ranks' recovery. With it, every member learns
// uniformly whether anyone failed, and all repair and retry in lockstep —
// the trade-off (one agreement per operation) is the documented cost of
// ULFM's uniform collectives.
func (r *ResilientComm) retry(op func() error) error {
	for attempt := 0; ; attempt++ {
		var sw *vtime.Stopwatch
		if attempt > 0 {
			// Re-executions after a repair are the paper's fourth recovery
			// phase; first attempts are ordinary collectives and untimed.
			sw = vtime.NewStopwatch(r.comm.Proc().Endpoint().VClock())
		}
		err := op()
		var retrySec float64
		if sw != nil {
			retrySec = sw.Lap()
			observePhase(obsPhaseRetry, retrySec)
		}
		if err != nil && !mpi.IsFault(err) {
			return err
		}
		ok := uint32(1)
		if err != nil {
			ok = 0
		}
		r.comm.FailureAck()
		agreed, aerr := r.comm.Agree(ok)
		if aerr != nil && !mpi.IsProcFailed(aerr) {
			return aerr
		}
		if agreed == 1 && aerr == nil {
			r.realizePolicy(retrySec)
			return nil // success everywhere, membership intact
		}
		if attempt >= r.policy.MaxRetries {
			if err == nil {
				err = fmt.Errorf("membership changed")
			}
			return fmt.Errorf("ulfm: giving up after %d repairs: %w", attempt, err)
		}
		if rerr := r.repair(); rerr != nil {
			return rerr
		}
	}
}

// repair runs the ULFM pipeline and applies the drop policy, mirroring
// each phase's stopwatch lap into the live recovery metrics so the
// journal breakdown and /metrics always agree.
func (r *ResilientComm) repair() error {
	err := r.repairPipeline()
	if err != nil {
		obsRepairFailures.Inc()
	} else {
		obsRecoveries.Inc()
	}
	return err
}

func (r *ResilientComm) repairPipeline() error {
	bd := metrics.NewBreakdown()
	sw := vtime.NewStopwatch(r.comm.Proc().Endpoint().VClock())

	ep := r.comm.Proc().Endpoint()

	r.comm.Revoke()
	lap := sw.Lap()
	bd.Add(metrics.PhaseRevoke, lap)
	observePhase(obsPhaseRevoke, lap)
	transport.Hit(ep.ID(), transport.PointUlfmRevoked)

	r.comm.FailureAck()
	if _, err := r.comm.Agree(1); err != nil && !mpi.IsProcFailed(err) {
		return err
	}
	lap = sw.Lap()
	bd.Add(metrics.PhaseAgree, lap)
	observePhase(obsPhaseAgree, lap)
	transport.Hit(ep.ID(), transport.PointUlfmAgreed)

	shrunk, err := r.comm.Shrink()
	if err != nil {
		return err
	}
	shrinkSec := sw.Lap()
	bd.Add(metrics.PhaseShrink, shrinkSec)
	transport.Hit(ep.ID(), transport.PointUlfmShrunk)

	dead := missingFrom(r.comm.Procs(), shrunk.Procs())
	dropNode := r.policy.Drop == failure.KillNode

	if r.policy.Advisor != nil {
		// Rank 0 of the shrunken world decides; the opaque code rides a
		// broadcast and an agreement seals it, so either every member
		// applies the same strategy or (if a new fault interleaves) every
		// member skips the advice uniformly and falls back to the static
		// drop policy — the next operation's agreement repairs the new
		// corpse and the advisor gets another look.
		code := []int64{0}
		var advDrop, advRollback, decided bool
		if shrunk.Rank() == 0 {
			advDrop, advRollback, code[0] = r.policy.Advisor.Advise(ep.VClock().Now(), shrunk.Procs(), dead)
			decided = true
		}
		berr := mpi.Bcast(shrunk, code, 0)
		if berr != nil && !mpi.IsFault(berr) {
			return berr
		}
		okFlag := uint32(1)
		if berr != nil {
			okFlag = 0
		}
		shrunk.FailureAck()
		agreed, aerr := shrunk.Agree(okFlag)
		if aerr != nil && !mpi.IsProcFailed(aerr) {
			return aerr
		}
		if aerr == nil && agreed == 1 && code[0] != 0 {
			if !decided {
				advDrop, advRollback = r.policy.Advisor.Adopt(ep.VClock().Now(), shrunk.Procs(), dead, code[0])
			}
			dropNode = advDrop
			if advRollback {
				r.rollback = true
			}
			carried := 0.0
			if r.pendingPol != nil {
				carried = r.pendingPol.realized // cascade: fold earlier repairs in
			}
			r.pendingPol = &pendingPolicy{code: code[0], decided: decided, realized: carried}
		}
		lap = sw.Lap()
		bd.Add(metrics.PhasePolicy, lap)
		observePhase(obsPhasePolicy, lap)
	}

	if dropNode && r.cluster != nil {
		deadNodes := map[simnet.NodeID]bool{}
		for _, d := range dead {
			if n, nerr := r.cluster.NodeOf(d); nerr == nil {
				deadNodes[n] = true
			}
		}
		var keep []simnet.ProcID
		for _, pr := range shrunk.Procs() {
			if n, nerr := r.cluster.NodeOf(pr); nerr == nil && !deadNodes[n] {
				keep = append(keep, pr)
			}
		}
		sub, serr := shrunk.Subset(keep)
		if serr != nil {
			return serr
		}
		lap = sw.Lap()
		bd.Add(metrics.PhaseShrink, lap)
		shrinkSec += lap
		if sub == nil {
			observePhase(obsPhaseShrink, shrinkSec)
			r.events = append(r.events, bd)
			return ErrDropped
		}
		shrunk = sub
	}
	observePhase(obsPhaseShrink, shrinkSec)

	if r.pendingPol != nil {
		r.pendingPol.realized += bd.Total()
	}
	r.comm = shrunk
	r.events = append(r.events, bd)
	if r.policy.OnReconfigure != nil {
		r.policy.OnReconfigure(shrunk, bd)
	}
	return nil
}

// realizePolicy closes the loop on an adopted policy decision once the
// retried collective has succeeded: the member that ran Advise reports
// the accumulated recovery seconds (every repair's breakdown plus the
// retry) back to the advisor's cost model.
func (r *ResilientComm) realizePolicy(retrySec float64) {
	pp := r.pendingPol
	if pp == nil {
		return
	}
	r.pendingPol = nil
	if !pp.decided || r.policy.Advisor == nil {
		return
	}
	r.policy.Advisor.Realize(r.comm.Proc().Endpoint().VClock().Now(), pp.code, pp.realized+retrySec)
}

// TakeRollback consumes the rollback advice armed by the last repair:
// true means the policy engine chose checkpoint rollback, and the
// caller should restore its latest snapshot before continuing (the
// repaired collective's result is still valid; only the training
// position rewinds). The flag is armed uniformly at every member of the
// repaired communicator, so all rewind together.
func (r *ResilientComm) TakeRollback() bool {
	rb := r.rollback
	r.rollback = false
	return rb
}

func (r *ResilientComm) rankOfProc(p simnet.ProcID) int {
	for i, pr := range r.comm.Procs() {
		if pr == p {
			return i
		}
	}
	return -1
}

func missingFrom(old, new []simnet.ProcID) []simnet.ProcID {
	in := make(map[simnet.ProcID]bool, len(new))
	for _, p := range new {
		in[p] = true
	}
	var out []simnet.ProcID
	for _, p := range old {
		if !in[p] {
			out = append(out, p)
		}
	}
	return out
}
