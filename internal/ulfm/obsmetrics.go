package ulfm

// Recovery-phase metrics — the live counterpart of the paper's Figure 4
// breakdown. Each repair observes the same stopwatch laps it already
// feeds into metrics.Breakdown, so the journal and /metrics can never
// disagree about where recovery time went. Phase durations come from the
// endpoint's VClock: wall seconds on the TCP backend, virtual seconds
// under simnet (the only place both run).

import "repro/internal/obs"

// Phase label values follow the paper's four-phase pipeline; the retry
// phase is the re-execution of the interrupted collective after repair.
const (
	obsPhaseRevoke = iota
	obsPhaseAgree
	obsPhaseShrink
	obsPhaseRetry
	obsPhasePolicy
	obsPhaseCount
)

var (
	obsPhaseSeconds [obsPhaseCount]*obs.Histogram
	obsPhaseTotal   [obsPhaseCount]*obs.Counter
	obsRecoveries   = obs.Default().Counter("ulfm_recoveries_total",
		"Completed repair pipelines (revoke+agree+shrink), across all communicators.")
	obsRepairFailures = obs.Default().Counter("ulfm_repair_failures_total",
		"Repairs that aborted (agreement error, shrink error, or drop policy).")
)

func init() {
	for i, phase := range [obsPhaseCount]string{"revoke", "agree", "shrink", "retry", "policy"} {
		obsPhaseSeconds[i] = obs.Default().Histogram("ulfm_recovery_phase_seconds",
			"Time spent in one recovery phase of one repair (VClock seconds).",
			obs.SecondsBuckets(), obs.L("phase", phase))
		obsPhaseTotal[i] = obs.Default().Counter("ulfm_recovery_phase_total",
			"Executions of one recovery phase.", obs.L("phase", phase))
	}
}

func observePhase(phase int, sec float64) {
	obsPhaseSeconds[phase].Observe(sec)
	obsPhaseTotal[phase].Inc()
}
