package ulfm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simnet"
)

// fakeAdvisor is a scripted Advisor: it always returns the configured
// strategy and records every call so tests can assert the replication
// protocol (one Advise at the deciding rank, Adopt everywhere else, one
// Realize after the retried collective succeeds).
type fakeAdvisor struct {
	mu       sync.Mutex
	code     int64
	dropNode bool
	rollback bool

	adviseCalls  int
	adoptCalls   int
	realizeCalls int
	adoptedCode  int64
	realizedSec  float64
}

func (f *fakeAdvisor) Advise(now float64, survivors, dead []simnet.ProcID) (bool, bool, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.adviseCalls++
	return f.dropNode, f.rollback, f.code
}

func (f *fakeAdvisor) Adopt(now float64, survivors, dead []simnet.ProcID, code int64) (bool, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.adoptCalls++
	f.adoptedCode = code
	return f.dropNode, f.rollback
}

func (f *fakeAdvisor) Realize(now float64, code int64, realizedSeconds float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.realizeCalls++
	f.realizedSec = realizedSeconds
}

// runAdvisedWorld is runWorld with a per-rank fakeAdvisor installed on
// every member before the failure barrier (the advice exchange is
// collective, so the advisor must be uniform).
func runAdvisedWorld(t *testing.T, c *simnet.Cluster, mk func(rank int) *fakeAdvisor,
	body func(rank int, r *ResilientComm, adv *fakeAdvisor, sync func()) error) []*fakeAdvisor {
	t.Helper()
	advs := make([]*fakeAdvisor, len(c.Procs()))
	errs := runWorld(t, c, func(rank int, r *ResilientComm, barrier func()) error {
		adv := mk(rank)
		advs[rank] = adv
		r.policy.Advisor = adv
		return body(rank, r, adv, barrier)
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	return advs
}

func TestAdvisorDecideAdoptRealize(t *testing.T) {
	c := testCluster(1, 4)
	advs := runAdvisedWorld(t, c,
		func(int) *fakeAdvisor { return &fakeAdvisor{code: 7} },
		func(rank int, r *ResilientComm, adv *fakeAdvisor, barrier func()) error {
			barrier()
			if rank == 1 {
				c.Kill(r.Comm().Proc().ID())
				return nil
			}
			data := []float64{1}
			if err := Allreduce(r, data, mpi.OpSum); err != nil {
				return err
			}
			if data[0] != 3 || r.Size() != 3 {
				return fmt.Errorf("rank %d: sum=%v size=%d, want 3/3", rank, data[0], r.Size())
			}
			if r.TakeRollback() {
				return fmt.Errorf("rank %d: rollback armed without rollback advice", rank)
			}
			return nil
		})
	// Rank 0 survives as rank 0 of the shrunken communicator, so it is
	// the deciding member: one Advise, one Realize with the measured
	// recovery time, no Adopt.
	if advs[0].adviseCalls != 1 || advs[0].adoptCalls != 0 {
		t.Fatalf("decider calls: advise=%d adopt=%d, want 1/0", advs[0].adviseCalls, advs[0].adoptCalls)
	}
	if advs[0].realizeCalls != 1 || advs[0].realizedSec <= 0 {
		t.Fatalf("decider realize: calls=%d sec=%v, want 1 call with positive seconds",
			advs[0].realizeCalls, advs[0].realizedSec)
	}
	for _, rank := range []int{2, 3} {
		a := advs[rank]
		if a.adviseCalls != 0 || a.adoptCalls != 1 || a.adoptedCode != 7 {
			t.Fatalf("rank %d: advise=%d adopt=%d code=%d, want 0/1/7",
				rank, a.adviseCalls, a.adoptCalls, a.adoptedCode)
		}
		if a.realizeCalls != 0 {
			t.Fatalf("rank %d: non-deciding member reported Realize", rank)
		}
	}
}

func TestAdvisorRollbackArmsAllSurvivors(t *testing.T) {
	c := testCluster(1, 4)
	runAdvisedWorld(t, c,
		func(int) *fakeAdvisor { return &fakeAdvisor{code: 9, rollback: true} },
		func(rank int, r *ResilientComm, adv *fakeAdvisor, barrier func()) error {
			barrier()
			if rank == 2 {
				c.Kill(r.Comm().Proc().ID())
				return nil
			}
			if err := Allreduce(r, []float64{1}, mpi.OpSum); err != nil {
				return err
			}
			// Armed uniformly, and consuming it disarms it.
			if !r.TakeRollback() {
				return fmt.Errorf("rank %d: rollback advice not armed", rank)
			}
			if r.TakeRollback() {
				return fmt.Errorf("rank %d: rollback flag not consumed", rank)
			}
			return nil
		})
}

func TestAdvisorNodeDropOverridesStaticPolicy(t *testing.T) {
	// Policy.Drop stays KillProcess; the advisor's dropNode verdict must
	// still evict the dead process's node-mates, exactly like the static
	// KillNode policy would.
	c := testCluster(2, 3)
	var mu sync.Mutex
	dropped, kept := 0, 0
	runAdvisedWorld(t, c,
		func(int) *fakeAdvisor { return &fakeAdvisor{code: 11, dropNode: true} },
		func(rank int, r *ResilientComm, adv *fakeAdvisor, barrier func()) error {
			barrier()
			if rank == 4 { // node 1
				c.Kill(r.Comm().Proc().ID())
				return nil
			}
			data := []float64{1}
			err := Allreduce(r, data, mpi.OpSum)
			if errors.Is(err, ErrDropped) {
				if n, nerr := c.NodeOf(r.Comm().Proc().ID()); nerr != nil || n != 1 {
					return fmt.Errorf("rank %d dropped but not a node-mate of the corpse (node=%v err=%v)", rank, n, nerr)
				}
				mu.Lock()
				dropped++
				mu.Unlock()
				return nil
			}
			if err != nil {
				return err
			}
			if data[0] != 3 || r.Size() != 3 {
				return fmt.Errorf("rank %d: sum=%v size=%d, want 3/3", rank, data[0], r.Size())
			}
			mu.Lock()
			kept++
			mu.Unlock()
			return nil
		})
	if dropped != 2 || kept != 3 {
		t.Fatalf("dropped=%d kept=%d, want 2/3", dropped, kept)
	}
}

func TestAdvisorDeclinesFallsBackToStaticPolicy(t *testing.T) {
	// Code 0 means "no advice": nobody adopts, nobody realizes, and the
	// static KillProcess policy shrinks without touching node-mates.
	c := testCluster(2, 2)
	advs := runAdvisedWorld(t, c,
		func(int) *fakeAdvisor { return &fakeAdvisor{code: 0, dropNode: true, rollback: true} },
		func(rank int, r *ResilientComm, adv *fakeAdvisor, barrier func()) error {
			barrier()
			if rank == 3 {
				c.Kill(r.Comm().Proc().ID())
				return nil
			}
			data := []float64{1}
			if err := Allreduce(r, data, mpi.OpSum); err != nil {
				return err
			}
			// Rank 2 shares node 1 with the corpse; with the advice
			// declined it must survive the plain shrink.
			if data[0] != 3 || r.Size() != 3 {
				return fmt.Errorf("rank %d: sum=%v size=%d, want 3/3", rank, data[0], r.Size())
			}
			if r.TakeRollback() {
				return fmt.Errorf("rank %d: declined advice armed a rollback", rank)
			}
			return nil
		})
	for rank, a := range advs {
		if a == nil || rank == 3 {
			continue
		}
		if a.adoptCalls != 0 || a.realizeCalls != 0 {
			t.Fatalf("rank %d: adopt=%d realize=%d after declined advice, want 0/0",
				rank, a.adoptCalls, a.realizeCalls)
		}
	}
}

func TestAllreduceVirtualSurvivesFailure(t *testing.T) {
	c := testCluster(1, 4)
	procs := c.Procs()
	var wg sync.WaitGroup
	wg.Add(len(procs))
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		// Zero-value policy: New must fill in the retry budget itself.
		r := New(comm, c, Policy{})
		if r.Rank() != rank {
			return fmt.Errorf("Rank() = %d, want %d", r.Rank(), rank)
		}
		wg.Done()
		wg.Wait()
		if rank == 1 {
			c.Kill(ep.ID())
			return nil
		}
		if err := AllreduceVirtual(r, 1<<20); err != nil {
			return err
		}
		if r.Size() != 3 {
			return fmt.Errorf("rank %d: size=%d after repair, want 3", rank, r.Size())
		}
		if len(r.Events()) != 1 {
			return fmt.Errorf("rank %d: events=%d, want 1", rank, len(r.Events()))
		}
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}
