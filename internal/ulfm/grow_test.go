package ulfm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/simnet"
)

// TestGrowCollective drives the epoch-boundary grow path in-package:
// an empty boundary costs one broadcast and admits nobody, then rank
// 0's candidate list is replicated to every member, the communicator
// is regrown, and old ranks and newcomers allreduce together.
func TestGrowCollective(t *testing.T) {
	c := testCluster(1, 3)
	orig := c.Procs()
	ep1, err := c.Spawn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := c.Spawn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	newProcs := []simnet.ProcID{ep1.ID(), ep2.ID()}

	var mu sync.Mutex
	sums := map[simnet.ProcID]float64{}
	g := simnet.NewGroup()
	for i, id := range orig {
		rank := i
		g.Go(c.Endpoint(id), func(ep *simnet.Endpoint) error {
			p := mpi.Attach(ep)
			comm, err := mpi.World(p, orig)
			if err != nil {
				return err
			}
			r := New(comm, c, DefaultPolicy())

			// An empty boundary: nobody to admit, nothing changes.
			admitted, err := r.Grow(nil)
			if err != nil {
				return fmt.Errorf("rank %d empty boundary: %w", rank, err)
			}
			if len(admitted) != 0 || r.Size() != 3 {
				return fmt.Errorf("rank %d: empty boundary admitted %v size %d", rank, admitted, r.Size())
			}

			// Rank 0 decides; non-roots pass nil and learn the list
			// through the decision broadcasts.
			var decision []simnet.ProcID
			if rank == 0 {
				decision = newProcs
			}
			admitted, err = r.Grow(decision)
			if err != nil {
				return fmt.Errorf("rank %d grow: %w", rank, err)
			}
			if len(admitted) != 2 {
				return fmt.Errorf("rank %d: admitted %v, want both newcomers", rank, admitted)
			}
			for i, np := range newProcs {
				if admitted[i] != np {
					return fmt.Errorf("rank %d: admitted %v, want %v", rank, admitted, newProcs)
				}
			}
			if r.Size() != 5 {
				return fmt.Errorf("rank %d: size = %d after grow", rank, r.Size())
			}
			data := []float64{1}
			if err := Allreduce(r, data, mpi.OpSum); err != nil {
				return err
			}
			mu.Lock()
			sums[ep.ID()] = data[0]
			mu.Unlock()
			return nil
		})
	}
	for _, ep := range []*simnet.Endpoint{ep1, ep2} {
		g.Go(ep, func(ep *simnet.Endpoint) error {
			p := mpi.Attach(ep)
			comm, err := mpi.Join(p)
			if err != nil {
				return err
			}
			r := New(comm, c, DefaultPolicy())
			if r.Size() != 5 {
				return fmt.Errorf("newcomer size = %d", r.Size())
			}
			data := []float64{1}
			if err := Allreduce(r, data, mpi.OpSum); err != nil {
				return err
			}
			mu.Lock()
			sums[ep.ID()] = data[0]
			mu.Unlock()
			return nil
		})
	}
	if err := simnet.FirstError(g.Wait()); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 5 {
		t.Fatalf("%d participants finished, want 5", len(sums))
	}
	for id, s := range sums {
		if s != 5 {
			t.Fatalf("proc %d sum = %v, want 5", id, s)
		}
	}
}
