package ulfm

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/transport"
)

// Grow admits newcomers into the communicator at an epoch boundary —
// the paper's forward scale-up: spares or fresh workers are merged and
// start contributing at epoch i+1. Collective over the current
// communicator: every member calls it each boundary; rank 0's candidate
// list is authoritative and is replicated to the others through two
// resilient broadcasts (count, then proc list), so non-roots simply
// pass nil. An empty decision costs one small broadcast, which keeps
// per-epoch participation cheap.
//
// Failures interleaved with the decision broadcasts are handled by
// skipping the boundary: if a repair reshapes the communicator while
// the decision is in flight, the authoritative rank 0 may have changed
// and the half-replicated list is void, so every survivor uniformly
// returns no admissions and the controller retries at the next
// boundary. A newcomer dying mid-welcome is tolerated by mpi.Grow
// itself (the dead newcomer is noted and repaired out by the next
// collective).
//
// On success the grown communicator replaces r's current one and the
// admitted list is returned; the caller streams state to the newcomers
// (autopilot.SendState) before the next collective touches them.
func (r *ResilientComm) Grow(newProcs []transport.ProcID) ([]transport.ProcID, error) {
	before := r.comm

	count := []int64{0}
	if r.comm.Rank() == 0 {
		count[0] = int64(len(newProcs))
	}
	if err := r.retry(func() error { return mpi.Bcast(r.comm, count, 0) }); err != nil {
		return nil, fmt.Errorf("ulfm: grow decision bcast: %w", err)
	}
	if r.comm != before || count[0] == 0 {
		return nil, nil // repaired mid-decision, or nothing to admit
	}

	list := make([]int64, count[0])
	if r.comm.Rank() == 0 {
		for i, p := range newProcs[:count[0]] {
			list[i] = int64(p)
		}
	}
	if err := r.retry(func() error { return mpi.Bcast(r.comm, list, 0) }); err != nil {
		return nil, fmt.Errorf("ulfm: grow list bcast: %w", err)
	}
	if r.comm != before {
		return nil, nil
	}

	admit := make([]transport.ProcID, len(list))
	for i, p := range list {
		admit[i] = transport.ProcID(p)
	}
	grown, err := r.comm.Grow(admit)
	if err != nil {
		return nil, fmt.Errorf("ulfm: grow: %w", err)
	}
	r.comm = grown
	return admit, nil
}
