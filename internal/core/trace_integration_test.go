package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/trace"
)

// TestTraceJournal checks that a run with a failure emits a coherent
// journal: recovery records with ULFM phases, one finish per survivor,
// and a run summary.
func TestTraceJournal(t *testing.T) {
	var buf bytes.Buffer
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 4)
	cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess)
	cfg.Trace = trace.New(&buf)
	res := runJob(t, cl, cfg)
	if res.FinalSize != 5 {
		t.Fatalf("final size = %d", res.FinalSize)
	}
	kinds := map[string]int{}
	sawShrink := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		kinds[ev.Kind]++
		if ev.Kind == "recovery" && ev.Phases["shrink"] >= 0 {
			if _, ok := ev.Phases["retry-collective"]; ok {
				sawShrink = true
			}
		}
	}
	if kinds["finish"] != 5 {
		t.Fatalf("finish records = %d, want 5", kinds["finish"])
	}
	if kinds["run"] != 1 {
		t.Fatalf("run records = %d, want 1", kinds["run"])
	}
	if kinds["recovery"] < 5 {
		t.Fatalf("recovery records = %d, want >= 5 (one per survivor)", kinds["recovery"])
	}
	if !sawShrink {
		t.Fatal("no recovery record carries the ULFM phases")
	}
}
