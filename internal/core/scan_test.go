package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/failure"
)

// TestFailureScheduleScan drives the recovery machinery through 150
// deterministic pseudo-random schedules of 1-3 process failures
// (including concurrent and adjacent-step ones), each with a real-time
// watchdog so a recovery deadlock fails fast instead of hanging the
// suite. This complements TestRandomFailureSchedulesProperty with a wider
// fixed corpus.
func TestFailureScheduleScan(t *testing.T) {
	if testing.Short() {
		t.Skip("long scan")
	}
	for it := 0; it < 150; it++ {
		seed := int64(it) * 7919
		rng := rand.New(rand.NewSource(seed))
		const workers, epochs = 6, 5
		nFail := rng.Intn(3) + 1
		victims := map[int]bool{}
		var evs []failure.Event
		for len(victims) < nFail {
			v := rng.Intn(workers)
			if victims[v] {
				continue
			}
			victims[v] = true
			evs = append(evs, failure.Event{
				Epoch: 1 + rng.Intn(3), Step: rng.Intn(3),
				Type: failure.Fail, Rank: v, Kind: failure.KillProcess,
			})
		}
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0; j-- {
				a, b := evs[j-1], evs[j]
				if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Step < a.Step) {
					evs[j-1], evs[j] = b, a
				}
			}
		}
		cl := testCluster(2, 3)
		cfg := baseCfg(workers, epochs)
		cfg.Schedule = &failure.Schedule{Events: evs}
		j, err := NewJob(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			res *Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := j.Run()
			ch <- outcome{res, err}
		}()
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("iter %d (events %+v): %v", it, evs, o.err)
			}
			if o.res.FinalSize != workers-nFail {
				t.Fatalf("iter %d (events %+v): final size %d, want %d", it, evs, o.res.FinalSize, workers-nFail)
			}
			var first uint64
			got := false
			for _, h := range o.res.FinalHashes {
				if !got {
					first, got = h, true
				} else if h != first {
					t.Fatalf("iter %d (events %+v): replica divergence", it, evs)
				}
			}
			if len(o.res.LossHistory) != epochs {
				t.Fatalf("iter %d: loss history %d entries, want %d", it, len(o.res.LossHistory), epochs)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d (events %+v): recovery deadlock", it, evs)
		}
	}
}

// TestReclaimScheduleScan repeats a smaller scan with sample reclamation
// enabled, checking the carryover paths under overlapping failures.
func TestReclaimScheduleScan(t *testing.T) {
	if testing.Short() {
		t.Skip("long scan")
	}
	for it := 0; it < 60; it++ {
		rng := rand.New(rand.NewSource(int64(it)*31337 + 7))
		const workers, epochs = 6, 5
		nFail := rng.Intn(2) + 1
		victims := map[int]bool{}
		var evs []failure.Event
		for len(victims) < nFail {
			v := rng.Intn(workers)
			if victims[v] {
				continue
			}
			victims[v] = true
			evs = append(evs, failure.Event{
				Epoch: 1 + rng.Intn(3), Step: rng.Intn(3),
				Type: failure.Fail, Rank: v, Kind: failure.KillProcess,
			})
		}
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0; j-- {
				a, b := evs[j-1], evs[j]
				if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Step < a.Step) {
					evs[j-1], evs[j] = b, a
				}
			}
		}
		cl := testCluster(2, 3)
		cfg := baseCfg(workers, epochs)
		cfg.Train.ReclaimLostSamples = true
		cfg.Schedule = &failure.Schedule{Events: evs}
		j, err := NewJob(cl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			res *Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := j.Run()
			ch <- outcome{res, err}
		}()
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("iter %d (events %+v): %v", it, evs, o.err)
			}
			var first uint64
			got := false
			for _, h := range o.res.FinalHashes {
				if !got {
					first, got = h, true
				} else if h != first {
					t.Fatalf("iter %d (events %+v): replica divergence with reclamation", it, evs)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d (events %+v): deadlock with reclamation", it, evs)
		}
	}
}
