package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/failure"
)

// Property: for random failure schedules (up to 3 process failures at
// arbitrary steps, including concurrent ones), a downscale run completes
// with exactly the surviving workers, bitwise-identical replicas, and a
// loss history for every epoch.
func TestRandomFailureSchedulesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const workers, epochs = 6, 5
		nFail := rng.Intn(3) + 1
		victims := map[int]bool{}
		var evs []failure.Event
		for len(victims) < nFail {
			v := rng.Intn(workers)
			if victims[v] {
				continue
			}
			victims[v] = true
			evs = append(evs, failure.Event{
				// Epochs 1..3 so the last epoch runs clean.
				Epoch: 1 + rng.Intn(3),
				Step:  rng.Intn(3),
				Type:  failure.Fail,
				Rank:  v,
				Kind:  failure.KillProcess,
			})
		}
		// Events must be in firing order for the schedule cursor.
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0; j-- {
				a, b := evs[j-1], evs[j]
				if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Step < a.Step) {
					evs[j-1], evs[j] = b, a
				}
			}
		}

		cl := testCluster(2, 3)
		cfg := baseCfg(workers, epochs)
		cfg.Schedule = &failure.Schedule{Events: evs}
		j, err := NewJob(cl, cfg)
		if err != nil {
			return false
		}
		res, err := j.Run()
		if err != nil {
			t.Logf("seed %d: run error: %v (events %+v)", seed, err, evs)
			return false
		}
		if res.FinalSize != workers-nFail {
			t.Logf("seed %d: final size %d, want %d", seed, res.FinalSize, workers-nFail)
			return false
		}
		if len(res.FinalHashes) != workers-nFail {
			return false
		}
		var first uint64
		got := false
		for _, h := range res.FinalHashes {
			if !got {
				first, got = h, true
			} else if h != first {
				t.Logf("seed %d: replica divergence (events %+v)", seed, evs)
				return false
			}
		}
		return len(res.LossHistory) == epochs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
