package core

import (
	"testing"

	"repro/internal/failure"
)

// TestReclaimLostSamples: with the flag on, a downscale recovery schedules
// the dead worker's unvisited samples for the next epoch, and the run
// stays consistent.
func TestReclaimLostSamples(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 5)
	cfg.Train.ReclaimLostSamples = true
	cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess)
	res := runJob(t, cl, cfg)
	if res.FinalSize != 5 {
		t.Fatalf("final size = %d", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 5)
	assertLossDecreases(t, res.LossHistory)
}

// TestReclaimRequiresDownScenario: the carryover cannot reach newcomers,
// so replacement/upscale configurations are rejected.
func TestReclaimRequiresDownScenario(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 5)
	cfg.Train.ReclaimLostSamples = true
	cfg.Scenario = ScenarioSame
	if _, err := NewJob(cl, cfg); err == nil {
		t.Fatal("ReclaimLostSamples with ScenarioSame should be rejected")
	}
}

// TestReclaimCoversMoreData: compare epochs-after-failure with and without
// reclamation — with the flag, the post-failure epoch runs more optimizer
// steps (the reclaimed batches), so the trajectory differs while both
// remain consistent.
func TestReclaimChangesTrajectory(t *testing.T) {
	run := func(reclaim bool) *Result {
		cl := testCluster(2, 3)
		cfg := baseCfg(6, 5)
		cfg.Train.ReclaimLostSamples = reclaim
		cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess)
		return runJob(t, cl, cfg)
	}
	with := run(true)
	without := run(false)
	assertConsistentReplicas(t, with, 5)
	assertConsistentReplicas(t, without, 5)
	same := true
	for p, h := range with.FinalHashes {
		if without.FinalHashes[p] != h {
			same = false
		}
	}
	if same {
		t.Fatal("reclaimed samples should alter the training trajectory")
	}
}
