package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/train"
)

func testCluster(nodes, ppn int) *simnet.Cluster {
	return simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         2,
	})
}

func realTrainCfg(workers, epochs int) train.Config {
	return train.Config{
		Mode:       train.Real,
		MLPSizes:   []int{8, 16, 4},
		Seed:       3,
		Dataset:    data.NewSynthetic(360, 8, 4, 7),
		BatchSize:  10,
		Epochs:     epochs,
		BaseLR:     0.05,
		Momentum:   0.9,
		RefWorkers: workers,
	}
}

func baseCfg(workers, epochs int) Config {
	return Config{
		Train:      realTrainCfg(workers, epochs),
		Horovod:    horovod.DefaultConfig(),
		Scenario:   ScenarioDown,
		DropPolicy: failure.KillProcess,
		Schedule:   failure.None(),
	}
}

func runJob(t *testing.T, cl *simnet.Cluster, cfg Config) *Result {
	t.Helper()
	j, err := NewJob(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertConsistentReplicas(t *testing.T, res *Result, want int) {
	t.Helper()
	if len(res.FinalHashes) != want {
		t.Fatalf("%d final replicas, want %d", len(res.FinalHashes), want)
	}
	var first uint64
	got := false
	for p, h := range res.FinalHashes {
		if !got {
			first, got = h, true
			continue
		}
		if h != first {
			t.Fatalf("replica divergence at proc %d: %v", p, res.FinalHashes)
		}
	}
}

func assertLossDecreases(t *testing.T, loss []float64) {
	t.Helper()
	if len(loss) < 2 {
		t.Fatalf("loss history too short: %v", loss)
	}
	if loss[len(loss)-1] >= loss[0] {
		t.Fatalf("loss did not decrease: %v", loss)
	}
}

func TestTrainsWithoutFailures(t *testing.T) {
	cl := testCluster(2, 3)
	res := runJob(t, cl, baseCfg(6, 4))
	if len(res.Events) != 0 {
		t.Fatalf("unexpected events: %v", res.Events)
	}
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 6)
	assertLossDecreases(t, res.LossHistory)
}

func TestDownscaleProcessDrop(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 4)
	cfg.Scenario = ScenarioDown
	cfg.DropPolicy = failure.KillProcess
	cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess)
	res := runJob(t, cl, cfg)

	if res.FinalSize != 5 {
		t.Fatalf("final size = %d, want 5 (process drop)", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 5)
	assertLossDecreases(t, res.LossHistory)
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	ev := res.Events[0]
	for _, ph := range []metrics.Phase{metrics.PhaseDetect, metrics.PhaseRevoke, metrics.PhaseAgree, metrics.PhaseShrink, metrics.PhaseRetry} {
		if ev.Critical.Get(ph) < 0 {
			t.Fatalf("phase %s missing", ph)
		}
	}
	if ev.Critical.Get(metrics.PhaseRecompute) != 0 {
		t.Fatal("forward recovery must not recompute")
	}
	// ULFM in-band detection is milliseconds, not a Gloo-style timeout.
	if d := ev.Critical.Get(metrics.PhaseDetect); d > 0.5 {
		t.Fatalf("ULFM detection took %v, want in-band (fast)", d)
	}
}

func TestDownscaleNodeDrop(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 4)
	cfg.DropPolicy = failure.KillNode
	cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess) // process fails...
	res := runJob(t, cl, cfg)
	// ...but policy drops the whole node: 6 - 3 = 3 left.
	if res.FinalSize != 3 {
		t.Fatalf("final size = %d, want 3 (node drop policy)", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 3)
}

func TestNodeFailureNodeDrop(t *testing.T) {
	cl := testCluster(3, 2)
	cfg := baseCfg(6, 4)
	cfg.DropPolicy = failure.KillNode
	cfg.Schedule = failure.At(1, 0, 3, failure.KillNode) // whole node dies
	res := runJob(t, cl, cfg)
	if res.FinalSize != 4 {
		t.Fatalf("final size = %d, want 4", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 4)
}

func TestReplacementKeepsSize(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 5)
	cfg.Scenario = ScenarioSame
	cfg.DropPolicy = failure.KillProcess
	cfg.Schedule = failure.At(1, 1, 2, failure.KillProcess)
	res := runJob(t, cl, cfg)
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d, want 6 (replacement)", res.FinalSize)
	}
	// 5 survivors + 1 replacement report final hashes.
	assertConsistentReplicas(t, res, 6)
	assertLossDecreases(t, res.LossHistory)
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Newcomer == nil {
		t.Fatal("replacement should report a newcomer breakdown")
	}
	if ev.Newcomer.Get(metrics.PhaseNewWorkerInit) <= 0 {
		t.Fatal("newcomer init cost missing")
	}
	if ev.Critical.Get(metrics.PhaseMerge)+ev.Newcomer.Get(metrics.PhaseMerge) <= 0 {
		t.Fatal("merge phase missing")
	}
}

func TestUpscaleDoubles(t *testing.T) {
	cl := testCluster(1, 4)
	cfg := baseCfg(4, 5)
	cfg.Scenario = ScenarioUp
	cfg.Schedule = failure.GrowAt(1, 1, 4)
	res := runJob(t, cl, cfg)
	if res.FinalSize != 8 {
		t.Fatalf("final size = %d, want 8 (doubled)", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 8)
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	// Graceful upscale: no failure-path phases at all.
	if res.Events[0].Critical.Get(metrics.PhaseDetect) != 0 {
		t.Fatal("upscale should not catch exceptions")
	}
	if res.Events[0].Critical.Get(metrics.PhaseShrink) != 0 {
		t.Fatal("upscale should not shrink")
	}
}

func TestUpscaleEventInFinalEpochDoesNotHang(t *testing.T) {
	cl := testCluster(1, 3)
	cfg := baseCfg(3, 2)
	cfg.Scenario = ScenarioUp
	cfg.Schedule = failure.GrowAt(1, 1, 3) // fires in the last epoch
	res := runJob(t, cl, cfg)
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d, want 6", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 6)
}

func TestVirtualModeWithGPU(t *testing.T) {
	cl := testCluster(4, 6)
	cfg := Config{
		Train: train.Config{
			Mode:       train.Virtual,
			Spec:       models.ResNet50V2,
			Epochs:     2,
			BaseLR:     0.1,
			RefWorkers: 12,
		},
		Horovod:    horovod.DefaultConfig(),
		UseGPU:     true,
		NCCL:       nccl.DefaultConfig(),
		Scenario:   ScenarioDown,
		DropPolicy: failure.KillProcess,
		Schedule:   failure.At(1, 1, 7, failure.KillProcess),
	}
	res := runJob(t, cl, cfg)
	if res.FinalSize != 23 {
		t.Fatalf("final size = %d, want 23", res.FinalSize)
	}
	if len(res.Events) != 1 {
		t.Fatalf("events = %d", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Critical.Get(metrics.PhaseGPUReinit) <= 0 {
		t.Fatal("NCCL reinit cost missing after shrink")
	}
	if ev.Critical.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
	if res.TotalTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestRecoveryIsCheapComparedToEpoch(t *testing.T) {
	// The paper's core claim at the mechanism level: ULFM recovery cost is
	// a tiny fraction of an epoch of ResNet training.
	cl := testCluster(4, 6)
	cfg := Config{
		Train: train.Config{
			Mode:       train.Virtual,
			Spec:       models.ResNet50V2,
			Epochs:     2,
			BaseLR:     0.1,
			RefWorkers: 12,
		},
		Horovod:    horovod.DefaultConfig(),
		UseGPU:     true,
		NCCL:       nccl.DefaultConfig(),
		Scenario:   ScenarioDown,
		DropPolicy: failure.KillProcess,
		Schedule:   failure.At(0, 2, 5, failure.KillProcess),
	}
	res := runJob(t, cl, cfg)
	rec := res.Events[0].Critical
	// Communicator reconstruction only (not GPU reinit, which is common
	// to both stacks): revoke+agree+shrink+retry.
	reconstruct := rec.Get(metrics.PhaseRevoke) + rec.Get(metrics.PhaseAgree) + rec.Get(metrics.PhaseShrink)
	if reconstruct <= 0 {
		t.Fatal("no reconstruction cost recorded")
	}
	if reconstruct > 1.0 {
		t.Fatalf("ULFM reconstruction = %vs, expected sub-second", reconstruct)
	}
}
