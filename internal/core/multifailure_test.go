package core

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/metrics"
)

// TestTwoFailuresAcrossEpochs injects two process failures in different
// epochs; the job must recover twice and stay consistent.
func TestTwoFailuresAcrossEpochs(t *testing.T) {
	cl := testCluster(2, 4)
	cfg := baseCfg(8, 6)
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 6, Kind: failure.KillProcess},
		{Epoch: 3, Step: 2, Type: failure.Fail, Rank: 2, Kind: failure.KillProcess},
	}}
	res := runJob(t, cl, cfg)
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d, want 6 after two process drops", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 6)
	assertLossDecreases(t, res.LossHistory)
	if len(res.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Events))
	}
	for i, ev := range res.Events {
		if ev.Critical.Get(metrics.PhaseShrink) < 0 || ev.Critical.Get(metrics.PhaseRetry) < 0 {
			t.Fatalf("event %d missing recovery phases: %v", i, ev.Critical)
		}
		if ev.Critical.Get(metrics.PhaseRecompute) != 0 {
			t.Fatalf("event %d recomputed work", i)
		}
	}
}

// TestFailureThenReplacementThenFailure mixes scenarios: a replacement
// recovery followed by another failure hitting a different original rank.
func TestReplacementThenFailure(t *testing.T) {
	cl := testCluster(2, 4)
	cfg := baseCfg(8, 7)
	cfg.Scenario = ScenarioSame
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 5, Kind: failure.KillProcess},
		{Epoch: 4, Step: 1, Type: failure.Fail, Rank: 1, Kind: failure.KillProcess},
	}}
	res := runJob(t, cl, cfg)
	// Both failures replaced: size stays 8.
	if res.FinalSize != 8 {
		t.Fatalf("final size = %d, want 8", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 8)
	if len(res.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Events))
	}
}

// TestFailureAndUpscale drops a worker, then doubles the survivors.
func TestFailureAndUpscale(t *testing.T) {
	cl := testCluster(2, 3)
	cfg := baseCfg(6, 7)
	cfg.Scenario = ScenarioUp
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 4, Kind: failure.KillProcess},
		{Epoch: 3, Step: 1, Type: failure.Grow, Add: 5},
	}}
	res := runJob(t, cl, cfg)
	// 6 -> 5 after the drop, +5 at the upscale = 10.
	if res.FinalSize != 10 {
		t.Fatalf("final size = %d, want 10", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 10)
	assertLossDecreases(t, res.LossHistory)
}

// TestManySequentialFailures drops one worker per epoch for three epochs.
func TestManySequentialFailures(t *testing.T) {
	cl := testCluster(2, 4)
	cfg := baseCfg(8, 6)
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 7, Kind: failure.KillProcess},
		{Epoch: 2, Step: 1, Type: failure.Fail, Rank: 6, Kind: failure.KillProcess},
		{Epoch: 3, Step: 1, Type: failure.Fail, Rank: 5, Kind: failure.KillProcess},
	}}
	res := runJob(t, cl, cfg)
	if res.FinalSize != 5 {
		t.Fatalf("final size = %d, want 5", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 5)
	if len(res.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(res.Events))
	}
}
