package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/vtime"
)

// debugTrace enables recovery-path tracing in tests.
var debugTrace = false

// runWorker is one worker's lifecycle. Victims and voluntarily dropped
// workers (node-drop policy) return nil.
func (j *Job) runWorker(ep *simnet.Endpoint, worldProcs []simnet.ProcID, isNew bool) error {
	err := j.workerLoop(ep, worldProcs, isNew)
	if errors.Is(err, simnet.ErrDead) || ep.Closed() {
		return nil
	}
	return err
}

func (j *Job) workerLoop(ep *simnet.Endpoint, worldProcs []simnet.ProcID, isNew bool) error {
	cfg := j.cfg
	sched := cfg.Schedule.Clone()
	p := mpi.Attach(ep)
	state, err := train.NewState(cfg.Train)
	if err != nil {
		return err
	}

	var comm *mpi.Comm
	var w *horovod.Worker
	mkWorker := func(rec *metrics.Breakdown) {
		hv := cfg.Horovod
		if cfg.UseGPU {
			sw := vtime.NewStopwatch(&ep.Clock)
			hv.GPU = nccl.Init(&ep.Clock, cfg.NCCL, comm.Size())
			if rec != nil {
				rec.Add(metrics.PhaseGPUReinit, sw.Lap())
			}
		}
		w = horovod.NewWorker(horovod.NewMPIBackend(comm), hv)
	}

	if isNew {
		// Software init happens while the survivors keep training — the
		// newcomer is admitted at the next epoch boundary.
		bd := metrics.NewBreakdown()
		ep.Compute(cfg.FrameworkInit)
		bd.Add(metrics.PhaseNewWorkerInit, cfg.FrameworkInit+j.cluster.Config().SpawnDelay)
		sw := vtime.NewStopwatch(&ep.Clock)
		comm, err = mpi.Join(p)
		if err != nil {
			return err
		}
		bd.Add(metrics.PhaseMerge, sw.Lap())
		mkWorker(bd)
		sw.Restart()
		if err := j.syncState(w, state); err != nil {
			return err
		}
		bd.Add(metrics.PhaseStateSync, sw.Lap())
		j.reportRecovery(j.seqOf(ep.ID()), bd, true)
		for sched.Pending(state.Epoch, state.Step) != nil {
			// stale events from before the join point
		}
		state.LRPol.Resize(comm.Size())
	} else {
		comm, err = mpi.World(p, worldProcs)
		if err != nil {
			return err
		}
		mkWorker(nil)
	}

	// Failure events address victims by their rank in the ORIGINAL world:
	// ranks are renumbered by shrinks, and a worker slightly behind the
	// victim re-traverses the event's (epoch, step) after recovery — it
	// must not mistake itself for the victim under its new rank.
	origRank := -1
	for i, pr := range worldProcs {
		if pr == ep.ID() {
			origRank = i
		}
	}

	// One-step undo snapshots: an interrupted collective can leave
	// survivors skewed by at most one applied step; the two most recent
	// pre-exchange snapshots are enough to reconcile.
	undo := make(map[int64]tensor.Vector)
	var undoOrder []int64
	snapKey := func(e, s int) int64 { return int64(e)*1_000_000 + int64(s) }
	var gradsBackup []tensor.Vector
	gradsKey := int64(-1) // snapKey the current gradsBackup corresponds to
	// pendingReclaim maps a target epoch to the samples reclaimed from
	// workers that failed in the previous epoch. Keyed (not consumed) so
	// that a rank rewound across the epoch boundary re-applies the same
	// carryover on re-entry — a cleared list would diverge step counts.
	pendingReclaim := make(map[int][]int)

	for state.Epoch < cfg.Train.Epochs {
		// Epoch-boundary merge of pending newcomers (Same/Up scenarios):
		// the paper's forward recovery admits them at epoch i+1 with the
		// survivors' state. A worker that IS one of the pending newcomers
		// skips this: it was just merged by the survivors' Grow.
		if seq, joiners := j.joinersFor(state.Epoch); len(joiners) > 0 && !containsProc(joiners, ep.ID()) {
			bd := metrics.NewBreakdown()
			sw := vtime.NewStopwatch(&ep.Clock)
			grown, gerr := comm.Grow(joiners)
			if gerr != nil {
				return gerr
			}
			comm = grown
			bd.Add(metrics.PhaseMerge, sw.Lap())
			mkWorker(bd)
			sw.Restart()
			if err := j.syncState(w, state); err != nil {
				return err
			}
			bd.Add(metrics.PhaseStateSync, sw.Lap())
			state.LRPol.Resize(comm.Size())
			j.reportRecovery(seq, bd, false)
		}
		j.clearPending(state.Epoch)

		if state.Step == 0 {
			// Reclaimed samples from the previous epoch's failures are
			// trained this epoch; entries too old to re-enter are dropped.
			state.SetCarryover(pendingReclaim[state.Epoch])
			for e := range pendingReclaim {
				if e < state.Epoch-1 {
					delete(pendingReclaim, e)
				}
			}
		}

		steps := state.StepsPerEpoch(comm.Size())
		if debugTrace {
			fmt.Printf("TRACE proc %d: epoch %d top steps=%d size=%d step=%d comm=%x ops=%d\n", ep.ID(), state.Epoch, steps, comm.Size(), state.Step, comm.ID(), comm.OpCount())
		}
		loopEpoch := state.Epoch
		var epochLoss float64
		lossBatches := 0
		for state.Step < steps && state.Epoch == loopEpoch {
			rank, size := comm.Rank(), comm.Size()
			if ev := sched.Pending(state.Epoch, state.Step); ev != nil {
				switch ev.Type {
				case failure.Grow:
					// Scenario III: resources became available. Spawn them
					// now; training continues uninterrupted and they merge
					// at the next epoch boundary.
					seq := j.claimEvent(fmt.Sprintf("grow/%d/%d", ev.Epoch, ev.Step), "upscale")
					j.ensureSpawn(seq, ev.Add, ep.Clock.Now())
				case failure.Fail:
					if origRank >= 0 && ev.Rank == origRank {
						failure.Fire(j.cluster, ep.ID(), ev.Kind)
						return nil
					}
				}
			}
			stepSW := vtime.NewStopwatch(&ep.Clock)
			k := snapKey(state.Epoch, state.Step)
			// Refresh the pre-exchange snapshot unconditionally: after a
			// rewind the step is re-traversed with a different state, and
			// a stale snapshot (or a stale position in the eviction order)
			// would corrupt the next rewind.
			undo[k] = state.Flat()
			for i, kk := range undoOrder {
				if kk == k {
					undoOrder = append(undoOrder[:i], undoOrder[i+1:]...)
					break
				}
			}
			undoOrder = append(undoOrder, k)
			if len(undoOrder) > 2 {
				delete(undo, undoOrder[0])
				undoOrder = undoOrder[1:]
			}
			loss := state.ComputeGrads(rank, size)
			ep.Compute(state.StepTime())
			if cfg.Train.Mode == train.Real {
				gradsBackup = cloneGrads(state.Grads())
			}
			gradsKey = k
			xerr := j.exchange(w, state)
			if xerr != nil {
				if errors.Is(xerr, simnet.ErrDead) {
					return xerr
				}
				if !mpi.IsFault(xerr) {
					return xerr
				}
				// Recovery loop: each iteration handles one failure event;
				// additional failures during the repair or the retried
				// exchange run the pipeline again (bounded so a failure
				// storm cannot spin forever).
				//
				// The exits of each stage are made UNIFORM with agreements
				// (which are stream-independent and work on damaged
				// communicators): a collective can complete at some ranks
				// while failing at others, and without the agreements the
				// completed ranks would move on — and later shrink to a
				// communicator the stragglers never learn about.
				detect := stepSW.Lap() - state.StepTime()
				kCur := k
				for attempt := 0; ; attempt++ {
					if attempt > 32 {
						return fmt.Errorf("core: recovery did not converge after %d repairs: %w", attempt, xerr)
					}
					newComm, bd, seq, dropped, rerr := j.recover(ep, comm, detect)
					detect = 0 // only the first detection is timeout-bound
					if rerr != nil {
						return rerr
					}
					if dropped {
						// Node-drop policy removed this (alive) worker.
						j.reportRecovery(seq, bd, false)
						return nil
					}
					lost := comm.Size() - newComm.Size()
					oldProcs := comm.Procs()
					comm = newComm
					mkWorker(bd)

					// Reconcile the <=1-step skew: agree on the earliest
					// interrupted step, rewind any rank that got ahead.
					// The Min-allreduce's own completion is agreed upon.
					sw := vtime.NewStopwatch(&ep.Clock)
					resume := []int64{kCur}
					stageOK := uint32(1)
					if aerr := mpi.Allreduce(comm, resume, mpi.OpMin); aerr != nil {
						if !mpi.IsFault(aerr) {
							return aerr
						}
						stageOK = 0
					}
					// The exit decision below must use ONLY the agreed value:
					// Agree's value is uniform across survivors, but its
					// error (an unacked-failure report) is rank-local — a
					// brand-new failure can be known at some ranks and not
					// others, and exits keyed on it would diverge. A fresh
					// failure surfaces uniformly at the next collective.
					comm.FailureAck()
					if debugTrace {
						fmt.Printf("TRACE proc %d: attempt %d commID=%x stage min kCur=%d resume=%d stageOK=%d\n",
							ep.ID(), attempt, comm.ID(), kCur, resume[0], stageOK)
					}
					if agreed, agErr := comm.Agree(stageOK); agreed != 1 {
						if agErr != nil && !mpi.IsProcFailed(agErr) {
							return agErr
						}
						j.reportRecovery(seq, bd, false)
						continue // not uniform; repair again
					} else if agErr != nil && !mpi.IsProcFailed(agErr) {
						return agErr
					}
					// Reclaim the failed workers' unvisited samples:
					// survivors compute the identical list from the agreed
					// membership difference and resume point, and train it
					// next epoch.
					if cfg.Train.ReclaimLostSamples && cfg.Train.Mode == train.Real {
						resumeEpoch := int(resume[0] / 1_000_000)
						resumeStep := int(resume[0] % 1_000_000)
						for _, dp := range diffProcs(oldProcs, comm.Procs()) {
							for oldRank, pr := range oldProcs {
								if pr == dp {
									pendingReclaim[resumeEpoch+1] = append(pendingReclaim[resumeEpoch+1],
										state.UnvisitedAfter(oldRank, len(oldProcs), resumeStep)...)
								}
							}
						}
					}
					if cfg.Scenario == ScenarioSame && lost > 0 {
						j.ensureSpawn(seq, lost, ep.Clock.Now())
					}
					if resume[0] < kCur {
						// This rank got ahead of the agreed resume point:
						// rewind one step from the pre-exchange snapshot.
						if snap, ok := undo[resume[0]]; ok {
							if serr := state.SetFlat(snap); serr != nil {
								return serr
							}
						}
						// The carryover is not part of the snapshot (it is
						// derived state); re-install the restored epoch's
						// list or the rank's shard sizes diverge.
						state.SetCarryover(pendingReclaim[state.Epoch])
						kCur = resume[0]
					}
					// Resize AFTER any snapshot restore: the snapshot
					// carries the pre-failure LR policy, and the policy
					// must end identical at rewound and retrying ranks.
					state.LRPol.Resize(comm.Size())

					// Forward recovery: every survivor participates in the
					// retried exchange at the agreed resume step. Ranks
					// that were already there contribute the gradients
					// they still hold (no recomputation); rewound ranks
					// recompute their resume-step minibatch first.
					retryOK := uint32(1)
					if gradsKey != kCur {
						loss = state.ComputeGrads(comm.Rank(), comm.Size())
						ep.Compute(state.StepTime())
						if cfg.Train.Mode == train.Real {
							gradsBackup = cloneGrads(state.Grads())
						}
						gradsKey = kCur
					} else if cfg.Train.Mode == train.Real {
						restoreGrads(state.Grads(), gradsBackup)
					}
					if retryErr := j.exchange(w, state); retryErr != nil {
						if !mpi.IsFault(retryErr) {
							return fmt.Errorf("core: retry after shrink failed: %w", retryErr)
						}
						retryOK = 0
					}
					comm.FailureAck()
					agreed, agErr := comm.Agree(retryOK)
					if debugTrace {
						fmt.Printf("TRACE proc %d: attempt %d commID=%x kCur=%d resume=%d retryOK=%d agreed=%d agErr=%v\n",
							ep.ID(), attempt, comm.ID(), kCur, resume[0], retryOK, agreed, agErr)
					}
					if agErr != nil && !mpi.IsProcFailed(agErr) {
						return agErr
					}
					bd.Add(metrics.PhaseRetry, sw.Lap())
					j.reportRecovery(seq, bd, false)
					// Exit on the agreed value only (see above): a new
					// failure mid-agreement is handled at the next step.
					if agreed != 1 {
						continue // someone's retry failed; repair again
					}
					break
				}
				// The shrink changed the worker count, so the epoch's
				// uniform step count changes too; recompute it here exactly
				// as a rank rewound across the epoch boundary would on
				// re-entering the epoch loop — otherwise the two groups
				// disagree on where the epoch ends.
				steps = state.StepsPerEpoch(comm.Size())
				if debugTrace {
					fmt.Printf("TRACE proc %d: post-recovery epoch %d steps=%d size=%d step=%d\n", ep.ID(), state.Epoch, steps, comm.Size(), state.Step)
				}
				// Fall through to apply the retried step below; if the
				// resume point was in the previous epoch, the epoch guard
				// on the inner loop re-enters it correctly.
			}
			if !math.IsNaN(loss) {
				epochLoss += loss
				lossBatches++
			}
			state.ApplyStep()
			if debugTrace {
				fmt.Printf("TRACE proc %d: applied (%d,%d) hash=%x size=%d comm=%x ops=%d\n", ep.ID(), state.Epoch, state.Step-1, state.Hash(), comm.Size(), comm.ID(), comm.OpCount())
			}
		}
		if state.Epoch != loopEpoch {
			// Skew reconciliation rewound into the previous epoch: redo it
			// from the restored point without the end-of-epoch bookkeeping.
			continue
		}
		if lossBatches > 0 {
			// Every rank records its shard-local epoch loss; the result
			// reports the final rank 0's history, which is then complete
			// even if the original rank 0 died mid-run.
			state.RecordLoss(state.Epoch, epochLoss/float64(lossBatches))
		}
		state.Epoch++
		state.Step = 0
	}
	// Release newcomers whose event fired during the final epoch: merge
	// them so their Join unblocks; they observe Epoch == Epochs and finish
	// immediately.
	if seq, joiners := j.joinersFor(state.Epoch); len(joiners) > 0 && !containsProc(joiners, ep.ID()) {
		bd := metrics.NewBreakdown()
		sw := vtime.NewStopwatch(&ep.Clock)
		grown, gerr := comm.Grow(joiners)
		if gerr != nil {
			return gerr
		}
		comm = grown
		bd.Add(metrics.PhaseMerge, sw.Lap())
		mkWorker(bd)
		sw.Restart()
		if err := j.syncState(w, state); err != nil {
			return err
		}
		bd.Add(metrics.PhaseStateSync, sw.Lap())
		// Keep the LR policy in lockstep with the newcomers (who resize
		// after their join), so replica hashes stay identical.
		state.LRPol.Resize(comm.Size())
		j.reportRecovery(seq, bd, false)
	}
	if debugTrace {
		fmt.Printf("TRACE proc %d: FINISHED size=%d\n", ep.ID(), comm.Size())
	}
	j.cfg.Trace.Finish(ep.Clock.Now(), int(ep.ID()), comm.Rank(), comm.Size())
	j.recordFinal(ep.ID(), state.Hash(), comm.Rank(), comm.Size(), state.LossHistory)
	return nil
}

// exchange runs one step's gradient allreduce through the middleware.
func (j *Job) exchange(w *horovod.Worker, state *train.State) error {
	if j.cfg.Train.Mode == train.Real {
		return w.AllreduceGrads(state.Names(), state.Grads())
	}
	return w.AllreduceGradsVirtual(j.cfg.Train.Spec.Name, state.Schedule())
}

// syncState broadcasts rank 0's state on the (grown) communicator so
// newcomers obtain the training state of the upcoming epoch.
func (j *Job) syncState(w *horovod.Worker, state *train.State) error {
	if j.cfg.Train.Mode == train.Real {
		flat := state.Flat()
		if err := w.BroadcastState(flat, 0); err != nil {
			return err
		}
		return state.SetFlat(flat)
	}
	head := state.Flat()
	if err := w.BroadcastState(head, 0); err != nil {
		return err
	}
	if err := state.SetFlat(head); err != nil {
		return err
	}
	return w.BroadcastStateVirtual(state.StateBytes(), 0)
}

// recover runs the paper's ULFM pipeline on a fault: revoke, acknowledge,
// agree, shrink, then apply the drop policy. dropped=true means the
// calling (alive) worker was removed by the node-drop policy and must
// exit. The returned breakdown carries the per-phase costs.
func (j *Job) recover(ep *simnet.Endpoint, comm *mpi.Comm, detect float64) (newComm *mpi.Comm, bd *metrics.Breakdown, seq int, dropped bool, err error) {
	bd = metrics.NewBreakdown()
	if detect < 0 {
		detect = 0
	}
	bd.Add(metrics.PhaseDetect, detect)
	sw := vtime.NewStopwatch(&ep.Clock)

	comm.Revoke()
	bd.Add(metrics.PhaseRevoke, sw.Lap())

	comm.FailureAck()
	if _, aerr := comm.Agree(1); aerr != nil && !mpi.IsProcFailed(aerr) {
		return nil, nil, 0, false, aerr
	}
	bd.Add(metrics.PhaseAgree, sw.Lap())

	shrunk, serr := comm.Shrink()
	if serr != nil {
		return nil, nil, 0, false, serr
	}
	bd.Add(metrics.PhaseShrink, sw.Lap())

	// The agreed dead set is the membership difference.
	dead := diffProcs(comm.Procs(), shrunk.Procs())
	seq = j.claimEvent(deadKey(dead), "failure")

	if j.cfg.DropPolicy == failure.KillNode {
		deadNodes := make(map[simnet.NodeID]bool)
		for _, d := range dead {
			if n, nerr := j.cluster.NodeOf(d); nerr == nil {
				deadNodes[n] = true
			}
		}
		var keep []simnet.ProcID
		for _, pr := range shrunk.Procs() {
			if n, nerr := j.cluster.NodeOf(pr); nerr == nil && !deadNodes[n] {
				keep = append(keep, pr)
			}
		}
		sub, suberr := shrunk.Subset(keep)
		if suberr != nil {
			return nil, nil, 0, false, suberr
		}
		bd.Add(metrics.PhaseShrink, sw.Lap())
		if sub == nil {
			return nil, bd, seq, true, nil
		}
		shrunk = sub
	}
	return shrunk, bd, seq, false, nil
}

// ensureSpawn provisions the event's newcomers exactly once.
func (j *Job) ensureSpawn(seq, n int, at float64) {
	j.mu.Lock()
	if j.spawned[seq] || n <= 0 {
		j.mu.Unlock()
		return
	}
	j.spawned[seq] = true
	j.mu.Unlock()
	procs := j.spawnWorkers(n, at, seq)
	j.registerPending(seq, procs)
}

// seqOf returns the event sequence a spawned worker belongs to.
func (j *Job) seqOf(p simnet.ProcID) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.joinSeq[p]
}

func containsProc(list []simnet.ProcID, p simnet.ProcID) bool {
	for _, x := range list {
		if x == p {
			return true
		}
	}
	return false
}

func cloneGrads(grads []tensor.Vector) []tensor.Vector {
	out := make([]tensor.Vector, len(grads))
	for i, g := range grads {
		out[i] = g.Clone()
	}
	return out
}

func restoreGrads(dst, src []tensor.Vector) {
	for i := range dst {
		copy(dst[i], src[i])
	}
}

func diffProcs(old, new []simnet.ProcID) []simnet.ProcID {
	inNew := make(map[simnet.ProcID]bool, len(new))
	for _, p := range new {
		inNew[p] = true
	}
	var out []simnet.ProcID
	for _, p := range old {
		if !inNew[p] {
			out = append(out, p)
		}
	}
	return out
}

func deadKey(dead []simnet.ProcID) string {
	ids := append([]simnet.ProcID(nil), dead...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return fmt.Sprintf("fail/%v", ids)
}
