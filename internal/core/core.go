// Package core implements the paper's contribution: elastic deep learning
// through resilient collective operations over ULFM MPI.
//
// Failures are handled at the granularity of a single collective
// operation (forward recovery): when a gradient allreduce reports
// MPI_ERR_PROC_FAILED, the survivors revoke the communicator, acknowledge
// and agree on the failure set, shrink to a sane communicator, reconcile
// the (at most one step of) progress skew the interrupted collective may
// have left, and retry the failed exchange with the contributions they
// still hold — no minibatch is re-executed and no checkpoint rollback
// happens. A runtime policy chooses between dropping only the failed
// process or its entire node (the paper's command-line flag), and the
// three elasticity scenarios are supported:
//
//	Down  — continue with the survivors (Scenario I)
//	Same  — spawn replacements; they merge at the next epoch boundary
//	        with the state forwarded by survivors (Scenario II)
//	Up    — admit newly available workers at the next epoch boundary
//	        (Scenario III), without interrupting the current epoch
//
// Newcomers receive the training state of epoch i+1 from the survivors,
// so they "commence from the (i+1)th epoch" exactly as the paper
// describes.
package core

import (
	"fmt"
	"sync"

	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/train"
)

// Scenario selects the elasticity scenario.
type Scenario int

const (
	ScenarioDown Scenario = iota
	ScenarioSame
	ScenarioUp
)

func (s Scenario) String() string {
	switch s {
	case ScenarioDown:
		return "down"
	case ScenarioSame:
		return "same"
	default:
		return "up"
	}
}

// Config parameterizes a ULFM elastic training job.
type Config struct {
	Train    train.Config
	Horovod  horovod.Config
	UseGPU   bool
	NCCL     nccl.Config
	Scenario Scenario
	// DropPolicy is the runtime flag from the paper: on a failure, drop
	// only the failed process (KillProcess) or its whole node (KillNode).
	DropPolicy failure.Kind
	Schedule   *failure.Schedule

	// FrameworkInit is the one-time software initialization of a new
	// worker (identical to the baseline's, per the paper: "this cost is
	// only incurred once").
	FrameworkInit float64

	// Trace, when non-nil, receives a structured journal of recoveries,
	// joins, and completions.
	Trace *trace.Recorder
}

// DefaultCosts fills cost-model defaults.
func (c *Config) DefaultCosts() {
	if c.FrameworkInit == 0 {
		c.FrameworkInit = 4.0
	}
}

// EventReport aggregates one reconfiguration's cost breakdowns.
type EventReport struct {
	Seq      int
	Trigger  string
	Critical *metrics.Breakdown // per-phase max across survivors
	Newcomer *metrics.Breakdown // per-phase max across newcomers
	Ranks    int
}

// Result summarizes a run.
type Result struct {
	Events      []*EventReport
	FinalHashes map[simnet.ProcID]uint64
	LossHistory []float64
	FinalSize   int
	TotalTime   float64
}

// pendingJoin tracks spawned workers awaiting their epoch-boundary merge.
type pendingJoin struct {
	seq        int
	procs      []simnet.ProcID
	mergeEpoch int // -1 until claimed by the first survivor reaching a boundary
}

// Job owns one ULFM elastic training run.
type Job struct {
	cluster *simnet.Cluster
	cfg     Config
	group   *simnet.Group

	mu        sync.Mutex
	eventSeq  int
	claims    map[string]int
	reports   map[int]*EventReport
	pending   *pendingJoin
	spawned   map[int]bool
	joinSeq   map[simnet.ProcID]int
	finals    map[simnet.ProcID]uint64
	loss      []float64
	finalSize int
}

// NewJob builds a job over an existing cluster.
func NewJob(cl *simnet.Cluster, cfg Config) (*Job, error) {
	cfg.DefaultCosts()
	if err := cfg.Train.Validate(); err != nil {
		return nil, err
	}
	if cfg.Train.ReclaimLostSamples && cfg.Scenario != ScenarioDown {
		return nil, fmt.Errorf("core: ReclaimLostSamples requires ScenarioDown (newcomers do not receive the carryover)")
	}
	return &Job{
		cluster: cl,
		cfg:     cfg,
		group:   simnet.NewGroup(),
		claims:  make(map[string]int),
		reports: make(map[int]*EventReport),
		spawned: make(map[int]bool),
		joinSeq: make(map[simnet.ProcID]int),
		finals:  make(map[simnet.ProcID]uint64),
	}, nil
}

// Run executes the job to completion.
func (j *Job) Run() (*Result, error) {
	procs := j.cluster.LiveProcs()
	for _, pid := range procs {
		ep := j.cluster.Endpoint(pid)
		j.group.Go(ep, func(ep *simnet.Endpoint) error {
			return j.runWorker(ep, procs, false)
		})
	}
	errs := j.group.Wait()
	if err := simnet.FirstError(errs); err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	res := &Result{
		FinalHashes: j.finals,
		LossHistory: j.loss,
		FinalSize:   j.finalSize,
		TotalTime:   j.cluster.MaxTime(),
	}
	for s := 1; ; s++ {
		rep, ok := j.reports[s]
		if !ok {
			break
		}
		res.Events = append(res.Events, rep)
	}
	j.cfg.Trace.Run(res.TotalTime, res.FinalSize, len(res.Events))
	return res, nil
}

// claimEvent maps a deterministic event key (shared by every survivor of
// the same reconfiguration) to a sequence number, allocating it on first
// claim.
func (j *Job) claimEvent(key, trigger string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if s, ok := j.claims[key]; ok {
		return s
	}
	j.eventSeq++
	j.claims[key] = j.eventSeq
	j.reports[j.eventSeq] = &EventReport{Seq: j.eventSeq, Trigger: trigger}
	return j.eventSeq
}

// reportRecovery folds a rank's breakdown into an event report.
func (j *Job) reportRecovery(seq int, bd *metrics.Breakdown, newcomer bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rep := j.reports[seq]
	if rep == nil {
		rep = &EventReport{Seq: seq}
		j.reports[seq] = rep
	}
	j.cfg.Trace.Recovery(0, -1, seq, rep.Trigger, bd, newcomer)
	rep.Ranks++
	if newcomer {
		rep.Newcomer = metrics.MaxOver(rep.Newcomer, bd)
	} else {
		rep.Critical = metrics.MaxOver(rep.Critical, bd)
	}
}

// spawnWorkers provisions n workers on fresh nodes and launches their
// goroutines; they block in mpi.Join until survivors Grow them in.
func (j *Job) spawnWorkers(n int, at float64, seq int) []simnet.ProcID {
	ppn := j.cluster.Config().ProcsPerNode
	var out []simnet.ProcID
	for n > 0 {
		node := j.cluster.AddNode()
		for i := 0; i < ppn && n > 0; i++ {
			ep, err := j.cluster.Spawn(node, at)
			//lint:ignore mpierrcmp spawn failure is provisioning, not a collective fault: the slot is skipped and the worker lands on the next node
			if err != nil {
				continue
			}
			out = append(out, ep.ID())
			j.mu.Lock()
			j.joinSeq[ep.ID()] = seq
			j.mu.Unlock()
			j.group.Go(ep, func(ep *simnet.Endpoint) error {
				return j.runWorker(ep, nil, true)
			})
			n--
		}
	}
	return out
}

// registerPending records spawned workers for the next epoch-boundary
// merge. One pending batch at a time (single live event).
func (j *Job) registerPending(seq int, procs []simnet.ProcID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending != nil && j.pending.seq == seq {
		return
	}
	j.pending = &pendingJoin{seq: seq, procs: procs, mergeEpoch: -1}
}

// joinersFor returns the pending newcomers to merge at the given epoch, or
// nil. The first survivor reaching a boundary claims the merge epoch; all
// later callers at the same epoch observe the same list.
func (j *Job) joinersFor(epoch int) (int, []simnet.ProcID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending == nil {
		return 0, nil
	}
	if j.pending.mergeEpoch < 0 {
		j.pending.mergeEpoch = epoch
	}
	if j.pending.mergeEpoch == epoch {
		return j.pending.seq, j.pending.procs
	}
	return 0, nil
}

// clearPending drops the pending batch once merged (called after the merge
// epoch passes).
func (j *Job) clearPending(epoch int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pending != nil && j.pending.mergeEpoch >= 0 && epoch > j.pending.mergeEpoch {
		j.pending = nil
	}
}

// recordFinal stores a finished worker's replica hash and rank-0 metrics.
func (j *Job) recordFinal(p simnet.ProcID, hash uint64, rank, size int, loss []float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finals[p] = hash
	if rank == 0 {
		j.loss = append([]float64(nil), loss...)
		j.finalSize = size
	}
}
