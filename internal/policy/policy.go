// Package policy is the adaptive recovery-policy engine: a sans-IO,
// deterministic decision core (in the gossip.Node / autopilot.Controller
// style) that, on each failure verdict, classifies the failure — single
// process drop, correlated node-level drop, cascade, or slow-node "gray
// failure" — and selects the cheapest recovery strategy among
// process-drop shrink, node-drop shrink, spare swap, and checkpoint
// rollback by comparing predicted recovery cost.
//
// The cost model is Chameleon-style: each strategy is priced as
// (recovery seconds) + (degraded-capacity penalty over a planning
// horizon). Recovery seconds are seeded from static defaults, overridden
// by rigged baselines (tests, conformance scenarios) or by live obs
// readings (recovery-phase means, state-transfer durations, spare-swap
// recovery latency — all via Registry.Value, so the engine registers no
// families it does not own), and finally refined per (class, strategy)
// cell with an EWMA of realized costs, exactly like the allreduce tuner
// in internal/mpi/tune.go. A mispriced constant is corrected after a
// handful of failures.
//
// The engine is wired into the ULFM repair pipeline through the
// ulfm.Advisor interface: rank 0 of the shrunken communicator calls
// Advise, replicates the opaque decision code with a broadcast, and the
// other members apply it symmetrically through Adopt — so the strategy
// (and therefore the membership) can never diverge across ranks. After
// the retried collective succeeds, the deciding rank reports the
// realized recovery cost through Realize, closing the EWMA loop and
// producing the regret metric.
package policy

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Mode is the operator override for strategy selection (-policy flag).
type Mode int

const (
	// ModeAuto selects the predicted-cheapest strategy per failure.
	ModeAuto Mode = iota
	// ModeShrink always shrinks the failed processes out (the paper's
	// baseline forward recovery).
	ModeShrink
	// ModeSwap prefers replacing deaths from the warm spare pool,
	// falling back to shrink when the pool is empty.
	ModeSwap
	// ModeRollback prefers checkpoint rollback, falling back to shrink
	// when no restore point exists.
	ModeRollback
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeShrink:
		return "shrink"
	case ModeSwap:
		return "swap"
	case ModeRollback:
		return "rollback"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses a -policy flag value.
func ParseMode(s string) (Mode, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "auto":
		return ModeAuto, nil
	case "shrink":
		return ModeShrink, nil
	case "swap":
		return ModeSwap, nil
	case "rollback":
		return ModeRollback, nil
	}
	return ModeAuto, fmt.Errorf("policy: unknown mode %q (want auto|shrink|swap|rollback)", s)
}

// Class is the engine's failure taxonomy.
type Class int

const (
	// ClassProcDrop: one process failed in isolation.
	ClassProcDrop Class = iota
	// ClassNodeDrop: a correlated drop — multiple processes failed
	// together, or the dead share a physical node.
	ClassNodeDrop
	// ClassCascade: this verdict follows another failure within the
	// cascade window; more are likely coming.
	ClassCascade
	// ClassGray: a slow-node gray failure — nobody died, but a member
	// is inflating every round (detected via ObserveGray).
	ClassGray

	classCount = iota
)

func (c Class) String() string {
	switch c {
	case ClassProcDrop:
		return "proc_drop"
	case ClassNodeDrop:
		return "node_drop"
	case ClassCascade:
		return "cascade"
	case ClassGray:
		return "gray"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Strategy is one recovery action the engine can select.
type Strategy int

const (
	// StrategyShrinkProc removes only the dead processes (ULFM shrink).
	StrategyShrinkProc Strategy = iota
	// StrategyShrinkNode also evicts the dead processes' node-mates
	// (the node-drop blast radius).
	StrategyShrinkNode
	// StrategySpareSwap shrinks now and restores the world from the
	// warm spare pool at the next boundary (via the autopilot).
	StrategySpareSwap
	// StrategyRollback restores the last checkpoint after the repair
	// (backward recovery; pays restore + recompute, but a cascade is
	// absorbed by a single rollback instead of repeated repairs).
	StrategyRollback

	strategyCount = iota
)

func (s Strategy) String() string {
	switch s {
	case StrategyShrinkProc:
		return "shrink_proc"
	case StrategyShrinkNode:
		return "shrink_node"
	case StrategySpareSwap:
		return "spare_swap"
	case StrategyRollback:
		return "rollback"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Decision is one policy verdict: the classification, the chosen
// strategy, the predicted cost of every candidate, and the opaque code
// that replicates the verdict to the other members.
type Decision struct {
	Class     Class
	Strategy  Strategy
	Predicted float64              // predicted cost of the chosen strategy (seconds)
	Costs     map[Strategy]float64 // predicted cost of every candidate
	Code      int64                // wire encoding (Adopt decodes)
	Seq       int                  // per-engine decision ordinal
}

// Baselines rigs the recovery-seconds component of each cost term.
// Zero fields fall through to live obs readings, then static defaults;
// conformance scenarios set exactly one side to make a strategy clearly
// cheaper and assert the engine picks it.
type Baselines struct {
	// ShrinkSeconds: the full repair pipeline (revoke+agree+shrink+retry).
	ShrinkSeconds float64
	// NodeExtraSeconds: the additional subset step of a node-level drop.
	NodeExtraSeconds float64
	// XferSeconds: streaming newcomer state to a swapped-in spare.
	XferSeconds float64
	// RestoreSeconds: loading the checkpoint at rollback.
	RestoreSeconds float64
	// RecomputeSeconds: re-executing the work lost since the checkpoint
	// (0 = derive from the checkpoint age as age/2, the expected loss).
	RecomputeSeconds float64
}

// Config parameterizes an Engine. Zero-valued tuning fields take the
// documented defaults.
type Config struct {
	// Mode is the operator override (-policy flag); ModeAuto compares
	// predicted costs.
	Mode Mode
	// NodeOf resolves process placement for node-level classification
	// and the node-drop strategy; nil disables both (every process is
	// its own node, so only simultaneous multi-death reads as
	// correlated).
	NodeOf func(transport.ProcID) (transport.NodeID, bool)
	// Spares reports the warm pool size at decision time; nil or zero
	// removes spare-swap from the candidate set.
	Spares func() int
	// Checkpoint reports whether a restore point exists and its age in
	// seconds; nil removes rollback from the candidate set.
	Checkpoint func() (ageSeconds float64, ok bool)
	// Horizon is the degraded-capacity planning window in seconds: a
	// strategy that leaves the world k short of n is charged k/n of it.
	// Default 60.
	Horizon float64
	// CascadeWindow classifies a verdict arriving within this many
	// seconds of the previous one as a cascade. Default 5.
	CascadeWindow float64
	// GrayLagMin is the per-round lag (seconds) below which a straggler
	// is never evicted. Default 0.25.
	GrayLagMin float64
	// EWMA is the weight of a realized cost against its cell's running
	// estimate. Default 0.3.
	EWMA float64
	// Baselines rigs cost inputs (tests/conformance).
	Baselines Baselines
	// Registry supplies live cost inputs via Value reads (nil =
	// obs.Default()).
	Registry *obs.Registry
	// Trace records "policy" journal events (nil = discard).
	Trace *trace.Recorder
	// Proc stamps trace records and protocol points.
	Proc transport.ProcID
}

// Static cost-model seeds, used when neither a rigged baseline, a live
// obs reading, nor an EWMA cell covers a term. Values match the
// committed control-plane baselines' order of magnitude.
const (
	defaultHorizon       = 60.0
	defaultCascadeWindow = 5.0
	defaultGrayLagMin    = 0.25
	defaultEWMA          = 0.3
	defaultShrinkSec     = 0.5
	defaultNodeExtraSec  = 0.05
	defaultXferSec       = 1.0
	defaultRestoreSec    = 1.0
)

// cell keys the EWMA table of realized recovery costs.
type cell struct {
	class    Class
	strategy Strategy
}

// Engine is the decision core. Safe for concurrent use (a Realize from
// the retry path may race a GrayVerdict probe from a boundary).
type Engine struct {
	cfg Config

	mu       sync.Mutex
	observed map[cell]float64 // EWMA realized recovery seconds
	lastFail float64          // time of the previous failure verdict
	haveFail bool
	burst    int // consecutive verdicts inside the cascade window
	gray     map[transport.ProcID]float64
	pending  map[int64]float64 // code -> predicted cost awaiting Realize
	seq      int

	lastStrategy      Strategy // most recent chosen strategy (GateSwap)
	lastStrategyValid bool
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Horizon <= 0 {
		cfg.Horizon = defaultHorizon
	}
	if cfg.CascadeWindow <= 0 {
		cfg.CascadeWindow = defaultCascadeWindow
	}
	if cfg.GrayLagMin <= 0 {
		cfg.GrayLagMin = defaultGrayLagMin
	}
	if cfg.EWMA <= 0 || cfg.EWMA > 1 {
		cfg.EWMA = defaultEWMA
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	return &Engine{
		cfg:      cfg,
		observed: make(map[cell]float64),
		gray:     make(map[transport.ProcID]float64),
		pending:  make(map[int64]float64),
	}
}

// Mode reports the engine's operating mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// --- decision encoding ------------------------------------------------------

// codeMagic marks a valid decision code; zero is "no decision".
const codeMagic = int64(1) << 16

func encode(c Class, s Strategy) int64 {
	return codeMagic | int64(c)<<8 | int64(s)
}

// DecodeCode reverses the wire encoding; ok is false for codes this
// engine version does not understand (a mixed-version world degrades to
// plain shrink rather than diverging).
func DecodeCode(code int64) (Class, Strategy, bool) {
	if code&codeMagic == 0 {
		return 0, 0, false
	}
	c := Class(code >> 8 & 0xff)
	s := Strategy(code & 0xff)
	if int(c) >= classCount || int(s) >= strategyCount {
		return 0, 0, false
	}
	return c, s, true
}

// --- the ulfm.Advisor triplet ----------------------------------------------

// Advise runs one full decision at the deciding rank: classify the
// failure, price every candidate strategy, pick the cheapest (or the
// mode-forced one), and record the decision in obs, the trace journal,
// and the protocol-point stream. survivors/dead describe the shrunken
// membership and the processes the shrink removed.
func (e *Engine) Advise(now float64, survivors, dead []transport.ProcID) (dropNode, rollback bool, code int64) {
	d := e.Decide(now, survivors, dead)
	return d.Strategy == StrategyShrinkNode, d.Strategy == StrategyRollback, d.Code
}

// Adopt applies a replicated decision code at a non-deciding rank. It
// records nothing (the deciding rank owns the metrics and journal
// record); it only decodes the action so membership stays uniform.
// Unknown codes degrade to plain shrink.
func (e *Engine) Adopt(now float64, survivors, dead []transport.ProcID, code int64) (dropNode, rollback bool) {
	cl, s, ok := DecodeCode(code)
	if !ok {
		return false, false
	}
	e.mu.Lock()
	// Track the failure clock and last strategy on every member, so a
	// later decision (or swap-gate consultation) made from THIS engine
	// after the seat migrates still sees the cascade history.
	e.noteFailureLocked(now)
	e.lastStrategy, e.lastStrategyValid = s, true
	_ = cl
	e.mu.Unlock()
	return s == StrategyShrinkNode, s == StrategyRollback
}

// Realize reports the realized recovery cost (seconds) of the decision
// identified by code, as measured by the caller across repair and
// retry. It folds the observation into the (class, strategy) EWMA cell,
// records realized cost and regret, and emits the closing "policy"
// journal record.
func (e *Engine) Realize(now float64, code int64, realizedSec float64) {
	cl, s, ok := DecodeCode(code)
	if !ok || realizedSec < 0 || math.IsNaN(realizedSec) {
		return
	}
	e.mu.Lock()
	k := cell{cl, s}
	if prev, seen := e.observed[k]; seen {
		e.observed[k] = (1-e.cfg.EWMA)*prev + e.cfg.EWMA*realizedSec
	} else {
		e.observed[k] = realizedSec
	}
	predicted, had := e.pending[code]
	delete(e.pending, code)
	seq := e.seq
	e.mu.Unlock()

	regret := 0.0
	if had {
		if r := realizedSec - predicted; r > 0 {
			regret = r
		}
	}
	obsCostRealized.Observe(realizedSec)
	obsRegret.Observe(regret)
	e.cfg.Trace.PolicyOutcome(now, int(e.cfg.Proc), seq, s.String(), predicted, realizedSec, regret)
	transport.Hit(e.cfg.Proc, transport.PointPolicyRealized)
}

// --- core decision ----------------------------------------------------------

// Decide is the full decision procedure (Advise without the interface
// flattening); exported for the harness and tests.
func (e *Engine) Decide(now float64, survivors, dead []transport.ProcID) Decision {
	e.mu.Lock()
	class := e.classifyLocked(now, dead)
	e.noteFailureLocked(now)
	d := e.chooseLocked(class, survivors, dead)
	e.seq++
	d.Seq = e.seq
	e.pending[d.Code] = d.Predicted
	e.lastStrategy, e.lastStrategyValid = d.Strategy, true
	e.mu.Unlock()

	e.record(now, d)
	return d
}

// classifyLocked maps a death set onto the failure taxonomy.
func (e *Engine) classifyLocked(now float64, dead []transport.ProcID) Class {
	if len(dead) > 1 {
		if e.cfg.NodeOf == nil {
			// No placement oracle: simultaneous multi-death is the
			// correlated signature.
			return ClassNodeDrop
		}
		perNode := map[transport.NodeID]int{}
		for _, p := range dead {
			if n, ok := e.cfg.NodeOf(p); ok {
				perNode[n]++
			}
		}
		for _, c := range perNode {
			if c > 1 {
				return ClassNodeDrop
			}
		}
	}
	if e.haveFail && now-e.lastFail <= e.cfg.CascadeWindow {
		return ClassCascade
	}
	return ClassProcDrop
}

// noteFailureLocked advances the cascade clock.
func (e *Engine) noteFailureLocked(now float64) {
	if e.haveFail && now-e.lastFail <= e.cfg.CascadeWindow {
		e.burst++
	} else {
		e.burst = 0
	}
	e.lastFail, e.haveFail = now, true
}

// chooseLocked prices the candidate set and picks the winner.
func (e *Engine) chooseLocked(class Class, survivors, dead []transport.ProcID) Decision {
	world := len(survivors) + len(dead)
	if world <= 0 {
		world = 1
	}
	var ckAge float64
	ckOK := false
	if e.cfg.Checkpoint != nil {
		ckAge, ckOK = e.cfg.Checkpoint()
	}
	spares := 0
	if e.cfg.Spares != nil {
		spares = e.cfg.Spares()
	}

	candidates := []Strategy{StrategyShrinkProc}
	if e.cfg.NodeOf != nil && len(e.nodeMates(survivors, dead)) > 0 {
		candidates = append(candidates, StrategyShrinkNode)
	}
	if spares > 0 {
		candidates = append(candidates, StrategySpareSwap)
	}
	if ckOK {
		candidates = append(candidates, StrategyRollback)
	}

	costs := make(map[Strategy]float64, len(candidates))
	for _, s := range candidates {
		costs[s] = e.predictLocked(class, s, survivors, dead, world, ckAge)
	}

	chosen := StrategyShrinkProc
	switch e.cfg.Mode {
	case ModeShrink:
		chosen = StrategyShrinkProc
	case ModeSwap:
		if _, ok := costs[StrategySpareSwap]; ok {
			chosen = StrategySpareSwap
		}
	case ModeRollback:
		if _, ok := costs[StrategyRollback]; ok {
			chosen = StrategyRollback
		}
	default:
		best := math.Inf(1)
		// Iterate in strategy-enum order so ties break identically at
		// every rank and across runs.
		for s := Strategy(0); int(s) < strategyCount; s++ {
			if c, ok := costs[s]; ok && c < best {
				chosen, best = s, c
			}
		}
	}
	return Decision{
		Class:     class,
		Strategy:  chosen,
		Predicted: costs[chosen],
		Costs:     costs,
		Code:      encode(class, chosen),
	}
}

// nodeMates returns the surviving node-mates of the dead set — the
// processes a node-drop would additionally evict.
func (e *Engine) nodeMates(survivors, dead []transport.ProcID) []transport.ProcID {
	deadNodes := map[transport.NodeID]bool{}
	for _, p := range dead {
		if n, ok := e.cfg.NodeOf(p); ok {
			deadNodes[n] = true
		}
	}
	var mates []transport.ProcID
	for _, p := range survivors {
		if n, ok := e.cfg.NodeOf(p); ok && deadNodes[n] {
			mates = append(mates, p)
		}
	}
	return mates
}

// predictLocked prices one strategy: recovery seconds (EWMA cell →
// rigged baseline → live obs → static default) plus the
// degraded-capacity penalty over the horizon. Cascades multiply the
// forward-recovery term by the burst length (each further failure pays
// the pipeline again); rollback pays it once, which is exactly why it
// can win there.
func (e *Engine) predictLocked(class Class, s Strategy, survivors, dead []transport.ProcID, world int, ckAge float64) float64 {
	rec := e.recoverySecondsLocked(class, s, ckAge)

	short := len(dead) // members the strategy leaves the world short of
	if class == ClassNodeDrop && e.cfg.NodeOf != nil {
		if mates := len(e.nodeMates(survivors, dead)); mates > 0 {
			// The dead nodes' surviving ranks are doomed either way:
			// every strategy pays their capacity, and a strategy that
			// keeps them in the communicator pays an expected second
			// repair when they fail. Evicting the whole node up front
			// (StrategyShrinkNode) trades that repair for the cheaper
			// subset step — which is exactly when node-drop wins.
			short += mates
			if s != StrategyShrinkNode {
				rec *= 2
			}
		}
	}
	if class == ClassCascade && s != StrategyRollback {
		// Forward recovery pays the pipeline again for each further
		// failure of the burst; one rollback absorbs them all.
		rec *= float64(2 + e.burst)
	}
	if s == StrategySpareSwap {
		short = 0 // the pool restores the world at the next boundary
	}
	penalty := float64(short) / float64(world) * e.cfg.Horizon
	return rec + penalty
}

// recoverySecondsLocked resolves the recovery-time component of one
// strategy, consulting in order: the EWMA cell of realized costs, the
// rigged baseline, the live obs reading, the static seed.
func (e *Engine) recoverySecondsLocked(class Class, s Strategy, ckAge float64) float64 {
	if v, ok := e.observed[cell{class, s}]; ok {
		return v
	}
	b := e.cfg.Baselines
	shrink := pick(b.ShrinkSeconds, e.shrinkMean(), defaultShrinkSec)
	switch s {
	case StrategyShrinkProc:
		return shrink
	case StrategyShrinkNode:
		return shrink + pick(b.NodeExtraSeconds, math.NaN(), defaultNodeExtraSec)
	case StrategySpareSwap:
		return shrink + pick(b.XferSeconds, e.obsMean("autopilot_state_transfer_seconds"), defaultXferSec)
	case StrategyRollback:
		restore := pick(b.RestoreSeconds, math.NaN(), defaultRestoreSec)
		recompute := b.RecomputeSeconds
		if recompute <= 0 {
			recompute = ckAge / 2 // expected lost work since the snapshot
		}
		return shrink + restore + recompute
	}
	return shrink
}

// shrinkMean sums the live recovery-phase means into one pipeline
// estimate (NaN before the first repair).
func (e *Engine) shrinkMean() float64 {
	total := 0.0
	for _, phase := range []string{"revoke", "agree", "shrink", "retry"} {
		v := e.obsMean("ulfm_recovery_phase_seconds", obs.L("phase", phase))
		if math.IsNaN(v) {
			return math.NaN()
		}
		total += v
	}
	return total
}

// obsMean reads one live metric value (histogram mean / counter level),
// NaN when the family, child, or first sample is missing.
func (e *Engine) obsMean(name string, labels ...obs.Label) float64 {
	v, ok := e.cfg.Registry.Value(name, labels...)
	if !ok {
		return math.NaN()
	}
	return v
}

// pick resolves one cost term: rigged baseline if set, live reading if
// sampled, static seed otherwise.
func pick(baseline, live, seed float64) float64 {
	if baseline > 0 {
		return baseline
	}
	if !math.IsNaN(live) && live > 0 {
		return live
	}
	return seed
}

// record publishes one decision to obs, the journal, and the
// protocol-point stream (deciding rank only — Adopt is silent).
func (e *Engine) record(now float64, d Decision) {
	obsDecisions[d.Strategy].Inc()
	obsClasses[d.Class].Inc()
	obsCostPredicted.Observe(d.Predicted)
	costs := make(map[string]float64, len(d.Costs))
	for s, c := range d.Costs {
		costs[s.String()] = c
	}
	e.cfg.Trace.PolicyDecision(now, int(e.cfg.Proc), d.Seq, d.Class.String(), d.Strategy.String(), d.Predicted, costs)
	transport.Hit(e.cfg.Proc, transport.PointPolicyDecide)
}

// --- gray failures ----------------------------------------------------------

// ObserveGray feeds one straggler measurement for proc: the extra
// seconds the member added to a round (or its heartbeat gap over
// baseline). The engine keeps an EWMA per process.
func (e *Engine) ObserveGray(now float64, proc transport.ProcID, lagSec float64) {
	if lagSec < 0 || math.IsNaN(lagSec) {
		return
	}
	e.mu.Lock()
	if prev, ok := e.gray[proc]; ok {
		e.gray[proc] = (1-e.cfg.EWMA)*prev + e.cfg.EWMA*lagSec
	} else {
		e.gray[proc] = lagSec
	}
	e.mu.Unlock()
}

// GrayVerdict asks whether the worst straggler should be evicted: the
// cost of keeping it (its lag charged over the whole horizon — a slow
// member slows every round for everyone) is compared against the
// predicted cost of evicting it. When eviction wins, the decision is
// recorded like any other and the straggler's lag state is consumed;
// the caller performs the eviction (e.g. a clean leave). Deterministic:
// processes are scanned in ID order.
func (e *Engine) GrayVerdict(now float64, world int) (transport.ProcID, Decision, bool) {
	if world <= 1 {
		return 0, Decision{}, false
	}
	e.mu.Lock()
	var procs []transport.ProcID
	for p := range e.gray {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	worst, worstLag := transport.ProcID(-1), 0.0
	for _, p := range procs {
		if e.gray[p] > worstLag {
			worst, worstLag = p, e.gray[p]
		}
	}
	if worst < 0 || worstLag < e.cfg.GrayLagMin || e.cfg.Mode == ModeShrink {
		e.mu.Unlock()
		return 0, Decision{}, false
	}
	keep := worstLag * e.cfg.Horizon
	evict := e.predictLocked(ClassGray, StrategyShrinkProc, nil, []transport.ProcID{worst}, world, 0)
	if evict >= keep {
		e.mu.Unlock()
		return 0, Decision{}, false
	}
	delete(e.gray, worst)
	e.seq++
	d := Decision{
		Class:     ClassGray,
		Strategy:  StrategyShrinkProc,
		Predicted: evict,
		Costs:     map[Strategy]float64{StrategyShrinkProc: evict},
		Code:      encode(ClassGray, StrategyShrinkProc),
		Seq:       e.seq,
	}
	e.pending[d.Code] = d.Predicted
	e.mu.Unlock()

	obsGrayEvictions.Inc()
	e.record(now, d)
	return worst, d, true
}

// --- the autopilot gate -----------------------------------------------------

// GateSwap is the autopilot delegation hook (Config.SwapGate): it
// approves a deaths-answering swap-in only when the engine's most
// recent decision chose the spare pool. Under ModeAuto a shrink verdict
// therefore suppresses the controller's reflexive swap; ModeSwap and a
// fresh engine (no decisions yet) preserve the pre-policy behavior.
func (e *Engine) GateSwap(deaths int) bool {
	if e == nil {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Mode == ModeSwap {
		return true
	}
	if e.cfg.Mode == ModeShrink || e.cfg.Mode == ModeRollback {
		return false
	}
	if e.lastStrategyValid {
		return e.lastStrategy == StrategySpareSwap
	}
	return true
}
