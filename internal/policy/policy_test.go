package policy

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vtime"
)

func procs(n int) []transport.ProcID {
	out := make([]transport.ProcID, n)
	for i := range out {
		out[i] = transport.ProcID(i)
	}
	return out
}

// twoPerNode is a placement oracle: procs 2k and 2k+1 share node k.
func twoPerNode(p transport.ProcID) (transport.NodeID, bool) {
	return transport.NodeID(p / 2), true
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeAuto}, {"auto", ModeAuto}, {"shrink", ModeShrink}, {"swap", ModeSwap}, {"ROLLBACK", ModeRollback}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMode("yolo"); err == nil {
		t.Errorf("ParseMode(yolo): want error")
	}
}

func TestClassification(t *testing.T) {
	clock := &vtime.Clock{}
	e := New(Config{NodeOf: twoPerNode})

	// A single dead process with no failure history: plain proc drop.
	d := e.Decide(clock.Now(), procs(8)[1:], procs(8)[:1])
	if d.Class != ClassProcDrop {
		t.Fatalf("single isolated death: class %v, want proc_drop", d.Class)
	}

	// Two dead sharing node 1 (procs 2 and 3): correlated node drop,
	// even though it arrives inside the cascade window.
	clock.Advance(1)
	d = e.Decide(clock.Now(), procs(8)[4:], []transport.ProcID{2, 3})
	if d.Class != ClassNodeDrop {
		t.Fatalf("node-mates death: class %v, want node_drop", d.Class)
	}

	// A further single death right after: cascade.
	clock.Advance(1)
	d = e.Decide(clock.Now(), procs(8)[5:], procs(8)[4:5])
	if d.Class != ClassCascade {
		t.Fatalf("death within cascade window: class %v, want cascade", d.Class)
	}

	// And once the window expires, back to proc drop.
	clock.Advance(100)
	d = e.Decide(clock.Now(), procs(8)[6:], procs(8)[5:6])
	if d.Class != ClassProcDrop {
		t.Fatalf("death after window: class %v, want proc_drop", d.Class)
	}
}

func TestClassificationNoOracle(t *testing.T) {
	// Without placement info, a simultaneous multi-death is the
	// correlated signature.
	e := New(Config{})
	d := e.Decide(0, procs(8)[2:], procs(8)[:2])
	if d.Class != ClassNodeDrop {
		t.Fatalf("multi-death without oracle: class %v, want node_drop", d.Class)
	}
}

// TestAutoSelectsRiggedCheapest is the unit-level core of the
// conformance suite: with costs rigged to make each strategy clearly
// cheaper in turn, ModeAuto must select exactly that strategy.
func TestAutoSelectsRiggedCheapest(t *testing.T) {
	world := procs(8)
	spares := func() int { return 2 }
	ckpt := func() (float64, bool) { return 2, true }

	t.Run("spare_swap", func(t *testing.T) {
		e := New(Config{Spares: spares, Checkpoint: ckpt,
			Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 0.1, RestoreSeconds: 50}})
		d := e.Decide(0, world[1:], world[:1])
		if d.Strategy != StrategySpareSwap {
			t.Fatalf("rigged cheap xfer: chose %v (costs %v), want spare_swap", d.Strategy, d.Costs)
		}
	})

	t.Run("shrink_proc", func(t *testing.T) {
		e := New(Config{Spares: spares, Checkpoint: ckpt,
			Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 500, RestoreSeconds: 500}})
		d := e.Decide(0, world[1:], world[:1])
		if d.Strategy != StrategyShrinkProc {
			t.Fatalf("rigged expensive alternatives: chose %v (costs %v), want shrink_proc", d.Strategy, d.Costs)
		}
	})

	t.Run("shrink_node", func(t *testing.T) {
		// Procs 0,1 share node 0 and 2,3 share node 1. Both ranks of
		// node 0 die plus rank 2 of node 1, leaving proc 3 a doomed
		// node-mate: evicting node 1 wholesale trades the expected
		// second repair (rigged expensive at 5 s) for the cheap subset
		// step.
		e := New(Config{NodeOf: twoPerNode, Spares: spares, Checkpoint: ckpt,
			Baselines: Baselines{ShrinkSeconds: 5, NodeExtraSeconds: 0.01, XferSeconds: 500, RestoreSeconds: 500}})
		dead := []transport.ProcID{0, 1, 2}
		survivors := []transport.ProcID{3, 4, 5, 6, 7}
		d := e.Decide(0, survivors, dead)
		if d.Class != ClassNodeDrop || d.Strategy != StrategyShrinkNode {
			t.Fatalf("doomed node-mates: class %v strategy %v (costs %v), want node_drop/shrink_node", d.Class, d.Strategy, d.Costs)
		}
	})

	t.Run("rollback", func(t *testing.T) {
		e := New(Config{Spares: spares, Checkpoint: ckpt,
			Baselines: Baselines{ShrinkSeconds: 2, XferSeconds: 500, RestoreSeconds: 0.01, RecomputeSeconds: 0.01}})
		// Two failures in quick succession: the second classifies as a
		// cascade, where forward recovery is priced per expected repeat
		// and a single rollback absorbs the burst.
		e.Decide(0, world[1:], world[:1])
		d := e.Decide(1, world[2:], world[1:2])
		if d.Class != ClassCascade || d.Strategy != StrategyRollback {
			t.Fatalf("cascade with cheap restore: class %v strategy %v (costs %v), want cascade/rollback", d.Class, d.Strategy, d.Costs)
		}
	})
}

func TestModeForcing(t *testing.T) {
	world := procs(8)
	spares := func() int { return 1 }
	ckpt := func() (float64, bool) { return 1, true }
	// Baselines rigged so auto would pick swap; the forced modes must
	// override the cost comparison.
	b := Baselines{ShrinkSeconds: 5, XferSeconds: 0.01, RestoreSeconds: 0.01}

	for _, tc := range []struct {
		mode Mode
		want Strategy
	}{{ModeShrink, StrategyShrinkProc}, {ModeSwap, StrategySpareSwap}, {ModeRollback, StrategyRollback}} {
		e := New(Config{Mode: tc.mode, Spares: spares, Checkpoint: ckpt, Baselines: b})
		if d := e.Decide(0, world[1:], world[:1]); d.Strategy != tc.want {
			t.Errorf("mode %v: chose %v, want %v", tc.mode, d.Strategy, tc.want)
		}
	}

	// Forced modes fall back to shrink when their resource is missing.
	e := New(Config{Mode: ModeSwap})
	if d := e.Decide(0, world[1:], world[:1]); d.Strategy != StrategyShrinkProc {
		t.Errorf("ModeSwap without pool: chose %v, want shrink_proc", d.Strategy)
	}
	e = New(Config{Mode: ModeRollback})
	if d := e.Decide(0, world[1:], world[:1]); d.Strategy != StrategyShrinkProc {
		t.Errorf("ModeRollback without checkpoint: chose %v, want shrink_proc", d.Strategy)
	}
}

// TestTieBreak pins the deterministic tie-break: exactly equal predicted
// costs resolve in strategy-enum order at every rank, every time.
func TestTieBreak(t *testing.T) {
	world := procs(4)
	// One dead of four, horizon 60: shrink penalty 15s. Swap rec =
	// shrink + xfer. Rig xfer = penalty so both cost 0.5 + 15 exactly.
	cfg := Config{Spares: func() int { return 1 },
		Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 15}}
	want := New(cfg).Decide(0, world[1:], world[:1])
	if want.Costs[StrategyShrinkProc] != want.Costs[StrategySpareSwap] {
		t.Fatalf("setup: costs not tied: %v", want.Costs)
	}
	if want.Strategy != StrategyShrinkProc {
		t.Fatalf("tie resolved to %v, want shrink_proc (enum order)", want.Strategy)
	}
	for i := 0; i < 50; i++ {
		if d := New(cfg).Decide(0, world[1:], world[:1]); d.Strategy != want.Strategy {
			t.Fatalf("iteration %d: tie resolved to %v, want %v", i, d.Strategy, want.Strategy)
		}
	}
}

// TestEWMARefinement rigs realized costs against the model: swap looks
// cheap on paper, but realizations keep coming back expensive, so after
// enough EWMA folding the engine flips to shrink.
func TestEWMARefinement(t *testing.T) {
	world := procs(8)
	e := New(Config{Spares: func() int { return 1 },
		Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 0.1}})

	now := 0.0
	d := e.Decide(now, world[1:], world[:1])
	if d.Strategy != StrategySpareSwap {
		t.Fatalf("before refinement: chose %v, want spare_swap", d.Strategy)
	}
	// Realized cost is rigged way above the shrink alternative; space
	// the failures past the cascade window so the class stays proc_drop
	// and the EWMA cell keeps matching.
	for i := 0; i < 20 && d.Strategy == StrategySpareSwap; i++ {
		e.Realize(now+0.1, d.Code, 100)
		now += 1000
		d = e.Decide(now, world[1:], world[:1])
	}
	if d.Strategy != StrategyShrinkProc {
		t.Fatalf("after rigged realizations: chose %v (costs %v), want shrink_proc", d.Strategy, d.Costs)
	}
}

func TestDecodeCode(t *testing.T) {
	for c := Class(0); int(c) < classCount; c++ {
		for s := Strategy(0); int(s) < strategyCount; s++ {
			cl, st, ok := DecodeCode(encode(c, s))
			if !ok || cl != c || st != s {
				t.Fatalf("round trip (%v,%v): got (%v,%v,%v)", c, s, cl, st, ok)
			}
		}
	}
	for _, bad := range []int64{0, 1, 42, codeMagic | 0xff00 | 0xff} {
		if _, _, ok := DecodeCode(bad); ok {
			t.Errorf("DecodeCode(%#x): want !ok", bad)
		}
	}
	// An unknown code must degrade to plain shrink at Adopt.
	e := New(Config{})
	if dn, rb := e.Adopt(0, procs(4), nil, 42); dn || rb {
		t.Errorf("Adopt(unknown code) = (%v,%v), want (false,false)", dn, rb)
	}
}

// TestAdoptSymmetry: a non-deciding member applying the replicated code
// reaches the same action as the decider — that is what keeps the
// membership uniform.
func TestAdoptSymmetry(t *testing.T) {
	dead := []transport.ProcID{0, 1, 2}
	survivors := []transport.ProcID{3, 4, 5, 6, 7}
	cfg := Config{NodeOf: twoPerNode,
		Baselines: Baselines{ShrinkSeconds: 5, NodeExtraSeconds: 0.01}}

	decider, follower := New(cfg), New(cfg)
	dropNode, rollback, code := decider.Advise(0, survivors, dead)
	gotDrop, gotRoll := follower.Adopt(0, survivors, dead, code)
	if gotDrop != dropNode || gotRoll != rollback {
		t.Fatalf("Adopt = (%v,%v), Advise = (%v,%v): divergent", gotDrop, gotRoll, dropNode, rollback)
	}
	if !dropNode {
		t.Fatalf("setup: expected a node-drop decision, got code %#x", code)
	}
}

// TestDeterminism feeds the identical failure sequence to independent
// engines and requires identical decision sequences — the property the
// seed-matrix CI job leans on.
func TestDeterminism(t *testing.T) {
	seq := []struct {
		now  float64
		dead []transport.ProcID
	}{
		{1, []transport.ProcID{3}},
		{2, []transport.ProcID{4, 5}},
		{3, []transport.ProcID{6}},
		{500, []transport.ProcID{7}},
	}
	run := func() []Decision {
		e := New(Config{NodeOf: twoPerNode, Spares: func() int { return 2 },
			Checkpoint: func() (float64, bool) { return 5, true }})
		var out []Decision
		alive := procs(16)
		for _, f := range seq {
			alive = alive[len(f.dead):]
			out = append(out, e.Decide(f.now, alive, f.dead))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Strategy != b[i].Strategy || a[i].Code != b[i].Code {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGateSwap(t *testing.T) {
	world := procs(8)
	if !New(Config{}).GateSwap(1) {
		t.Errorf("fresh auto engine: gate should default open")
	}
	if New(Config{Mode: ModeShrink}).GateSwap(1) {
		t.Errorf("ModeShrink: gate should be closed")
	}
	if !New(Config{Mode: ModeSwap}).GateSwap(1) {
		t.Errorf("ModeSwap: gate should be open")
	}

	// After a shrink decision the gate closes; after a swap decision it
	// opens.
	e := New(Config{Spares: func() int { return 1 },
		Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 500}})
	e.Decide(0, world[1:], world[:1])
	if e.GateSwap(1) {
		t.Errorf("after shrink decision: gate should veto the swap")
	}
	e = New(Config{Spares: func() int { return 1 },
		Baselines: Baselines{ShrinkSeconds: 0.5, XferSeconds: 0.1}})
	e.Decide(0, world[1:], world[:1])
	if !e.GateSwap(1) {
		t.Errorf("after swap decision: gate should approve the swap")
	}
}

func TestGrayVerdict(t *testing.T) {
	clock := &vtime.Clock{}
	e := New(Config{Baselines: Baselines{ShrinkSeconds: 0.1}})

	// Below the lag floor: never evict.
	e.ObserveGray(clock.Now(), 3, 0.01)
	if _, _, ok := e.GrayVerdict(clock.Now(), 8); ok {
		t.Fatalf("sub-floor lag: unexpected eviction")
	}

	// A heavy straggler: keeping it costs lag×horizon, far above the
	// eviction price; the verdict names the worst offender.
	e.ObserveGray(clock.Now(), 3, 2.0)
	e.ObserveGray(clock.Now(), 5, 0.5)
	victim, d, ok := e.GrayVerdict(clock.Now(), 8)
	if !ok || victim != 3 {
		t.Fatalf("gray verdict = (%v, ok=%v), want proc 3", victim, ok)
	}
	if d.Class != ClassGray {
		t.Fatalf("gray verdict class %v, want gray", d.Class)
	}
	// The straggler's state is consumed; the milder one remains below
	// threshold of its own keep cost? proc 5 at 0.5 lag: keep = 30,
	// evict ≈ 0.1 + 7.5 — still cheaper, so it is evicted next.
	victim, _, ok = e.GrayVerdict(clock.Now(), 8)
	if !ok || victim != 5 {
		t.Fatalf("second gray verdict = (%v, ok=%v), want proc 5", victim, ok)
	}
	if _, _, ok = e.GrayVerdict(clock.Now(), 8); ok {
		t.Fatalf("drained engine: unexpected third eviction")
	}

	// ModeShrink disables gray evictions outright.
	e = New(Config{Mode: ModeShrink})
	e.ObserveGray(clock.Now(), 1, 10)
	if _, _, ok := e.GrayVerdict(clock.Now(), 8); ok {
		t.Fatalf("ModeShrink: unexpected gray eviction")
	}
}

// TestRealizeFeedsObsAndRegret checks the obs side of the loop: a
// decision moves policy_decisions_total, a realization lands in
// policy_cost_seconds{kind=realized} and policy_regret_seconds.
func TestRealizeFeedsObsAndRegret(t *testing.T) {
	reg := obs.Default()
	before, _ := reg.Value("policy_decisions_total", obs.L("choice", "shrink_proc"))

	e := New(Config{Baselines: Baselines{ShrinkSeconds: 1}})
	world := procs(4)
	d := e.Decide(0, world[1:], world[:1])
	if d.Strategy != StrategyShrinkProc {
		t.Fatalf("setup: chose %v", d.Strategy)
	}
	after, ok := reg.Value("policy_decisions_total", obs.L("choice", "shrink_proc"))
	if !ok || after != before+1 {
		t.Fatalf("policy_decisions_total{shrink_proc}: %v -> %v, want +1", before, after)
	}

	e.Realize(1, d.Code, d.Predicted+2.5)
	if v, ok := reg.Value("policy_cost_seconds", obs.L("kind", "realized")); !ok || math.IsNaN(v) {
		t.Fatalf("policy_cost_seconds{realized} not sampled (ok=%v v=%v)", ok, v)
	}
	if v, ok := reg.Value("policy_regret_seconds"); !ok || math.IsNaN(v) || v <= 0 {
		t.Fatalf("policy_regret_seconds mean = %v (ok=%v), want > 0", v, ok)
	}
}

// TestPolicyJournalRecords pins the engine→journal wiring: one decide
// and one realized record of kind "policy", with the class in reason
// and the phase discriminator in extra.
func TestPolicyJournalRecords(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.New(&buf)
	e := New(Config{Trace: rec, Proc: 7, Baselines: Baselines{ShrinkSeconds: 1}})
	world := procs(4)
	d := e.Decide(2.5, world[1:], world[:1])
	e.Realize(3.5, d.Code, 4.0)

	var phases []string
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if ev.Kind != "policy" {
			t.Fatalf("kind %q, want policy", ev.Kind)
		}
		if ev.Proc != 7 || ev.Seq != d.Seq {
			t.Fatalf("record %+v: proc/seq not stamped", ev)
		}
		phases = append(phases, ev.Extra["phase"].(string))
	}
	if len(phases) != 2 || phases[0] != "decide" || phases[1] != "realized" {
		t.Fatalf("journal phases %v, want [decide realized]", phases)
	}
}
