package policy

// Decision-quality metrics: every verdict increments a per-choice
// counter, predicted and realized recovery costs land in one histogram
// family split by kind, and the regret histogram (realized minus
// predicted, clamped at zero) is the single number that says whether
// the cost model is honest. All families register at init per the
// obsinit invariant.

import "repro/internal/obs"

var (
	obsDecisions [strategyCount]*obs.Counter
	obsClasses   [classCount]*obs.Counter

	obsCostPredicted = obs.Default().Histogram("policy_cost_seconds",
		"Recovery cost per policy decision (VClock seconds), predicted vs realized.",
		obs.SecondsBuckets(), obs.L("kind", "predicted"))
	obsCostRealized = obs.Default().Histogram("policy_cost_seconds",
		"Recovery cost per policy decision (VClock seconds), predicted vs realized.",
		obs.SecondsBuckets(), obs.L("kind", "realized"))
	obsRegret = obs.Default().Histogram("policy_regret_seconds",
		"Realized minus predicted recovery cost per decision, clamped at zero.",
		obs.SecondsBuckets())
	obsGrayEvictions = obs.Default().Counter("policy_gray_evictions_total",
		"Straggler evictions ordered by the gray-failure verdict.")
)

func init() {
	for s := range obsDecisions {
		obsDecisions[s] = obs.Default().Counter("policy_decisions_total",
			"Recovery-policy decisions by chosen strategy.",
			obs.L("choice", Strategy(s).String()))
	}
	for c := range obsClasses {
		obsClasses[c] = obs.Default().Counter("policy_classifications_total",
			"Failure verdicts by classified shape.",
			obs.L("class", Class(c).String()))
	}
}
