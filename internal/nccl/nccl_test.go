package nccl

import (
	"errors"
	"testing"

	"repro/internal/vtime"
)

func TestInitChargesClock(t *testing.T) {
	var clk vtime.Clock
	cfg := DefaultConfig()
	c := Init(&clk, cfg, 24)
	if c.Size() != 24 {
		t.Fatalf("Size = %d", c.Size())
	}
	want := cfg.InitBase + cfg.InitPerGPU*24
	if got := clk.Now(); got != want {
		t.Fatalf("init cost = %v, want %v", got, want)
	}
}

func TestInitTimeGrowsWithScale(t *testing.T) {
	cfg := DefaultConfig()
	if !(InitTime(cfg, 192) > InitTime(cfg, 12)) {
		t.Fatal("init time should grow with GPU count")
	}
}

func TestAllreduceTimeScalesWithBytes(t *testing.T) {
	cfg := DefaultConfig()
	c := &Communicator{cfg: cfg, n: 24}
	small := c.AllreduceTime(23 << 20)
	big := c.AllreduceTime(549 << 20)
	if !(big > small*10) {
		t.Fatalf("VGG-sized allreduce should dwarf NasNet-sized: %v vs %v", big, small)
	}
}

func TestAllreduceSingleRankFree(t *testing.T) {
	c := &Communicator{cfg: DefaultConfig(), n: 1}
	if got := c.AllreduceTime(1 << 30); got != 0 {
		t.Fatalf("single-rank allreduce cost = %v, want 0", got)
	}
}

func TestInterNodeBottleneck(t *testing.T) {
	cfg := DefaultConfig()
	intra := &Communicator{cfg: cfg, n: 6}  // one node
	inter := &Communicator{cfg: cfg, n: 12} // two nodes
	bytes := int64(100 << 20)
	if !(inter.AllreduceTime(bytes) > intra.AllreduceTime(bytes)) {
		t.Fatal("crossing nodes should be slower than NVLink-only")
	}
}

func TestBrokenCommunicator(t *testing.T) {
	var clk vtime.Clock
	c := Init(&clk, DefaultConfig(), 4)
	if c.Broken() {
		t.Fatal("fresh communicator broken")
	}
	before := clk.Now()
	if err := c.Allreduce(&clk, 1<<20); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before {
		t.Fatal("allreduce did not advance clock")
	}
	c.Break()
	if err := c.Allreduce(&clk, 1<<20); !errors.Is(err, ErrBroken) {
		t.Fatalf("allreduce on broken comm = %v, want ErrBroken", err)
	}
	if err := c.Bcast(&clk, 1<<20); !errors.Is(err, ErrBroken) {
		t.Fatalf("bcast on broken comm = %v, want ErrBroken", err)
	}
}

func TestBcastCheaperThanAllreduce(t *testing.T) {
	c := &Communicator{cfg: DefaultConfig(), n: 24}
	b := int64(98 << 20)
	if !(c.BcastTime(b) < c.AllreduceTime(b)) {
		t.Fatal("bcast moves half the volume of allreduce")
	}
}
