// Package nccl models the GPU-side collective library both stacks in the
// paper delegate GPU work to ("we delegated all GPU computation and
// communication tasks to NCCL"). Because NCCL is the common term on both
// sides of the comparison, it is implemented as a calibrated cost model: a
// communicator with an initialization cost that grows with the GPU count,
// and hierarchical-ring collective timings over NVLink / node-injection
// bandwidths. Like the real library, it has no fault tolerance: a failure
// breaks the communicator, which must be recreated from scratch.
package nccl

import (
	"errors"

	"repro/internal/vtime"
)

// ErrBroken is returned by operations on a communicator that lost a
// member. NCCL cannot shrink or repair; the owner must re-init.
var ErrBroken = errors.New("nccl: communicator is broken")

// Config calibrates the cost model. Defaults mirror Summit-class nodes.
type Config struct {
	GPUsPerNode int
	NVLinkBW    float64 // bytes/s available to a GPU within the node
	InjectionBW float64 // bytes/s per node to the fabric
	RingLatency float64 // per-hop latency
	InitBase    float64 // communicator bootstrap constant
	InitPerGPU  float64 // per-rank share of communicator setup
}

// DefaultConfig matches the paper's testbed shape: 6 V100s per node,
// NVLink ~50 GB/s, 23 GB/s node injection bandwidth.
func DefaultConfig() Config {
	return Config{
		GPUsPerNode: 6,
		NVLinkBW:    50e9,
		InjectionBW: 23e9,
		RingLatency: 6e-6,
		InitBase:    0.25,
		InitPerGPU:  0.012,
	}
}

// Communicator is a GPU collective domain over n ranks.
type Communicator struct {
	cfg    Config
	n      int
	broken bool
}

// Init creates a communicator over nGPUs ranks, charging the caller's
// clock the initialization cost (every rank pays it; calls are collective
// and roughly simultaneous).
func Init(clk *vtime.Clock, cfg Config, nGPUs int) *Communicator {
	clk.Advance(InitTime(cfg, nGPUs))
	return &Communicator{cfg: cfg, n: nGPUs}
}

// InitTime returns the communicator bootstrap cost for nGPUs ranks.
func InitTime(cfg Config, nGPUs int) float64 {
	return cfg.InitBase + cfg.InitPerGPU*float64(nGPUs)
}

// Size returns the rank count.
func (c *Communicator) Size() int { return c.n }

// Broken reports whether the communicator has lost a member.
func (c *Communicator) Broken() bool { return c.broken }

// Break marks the communicator unusable (a member died).
func (c *Communicator) Break() { c.broken = true }

// AllreduceTime returns the modeled ring-allreduce duration for a payload
// of the given size: each rank moves 2(n-1)/n of the buffer through its
// narrowest link share.
func (c *Communicator) AllreduceTime(bytes int64) float64 {
	return collTime(c.cfg, c.n, bytes, 2)
}

// BcastTime returns the modeled ring-broadcast duration.
func (c *Communicator) BcastTime(bytes int64) float64 {
	return collTime(c.cfg, c.n, bytes, 1)
}

// Allreduce advances the clock by the allreduce cost, or fails if the
// communicator is broken.
func (c *Communicator) Allreduce(clk *vtime.Clock, bytes int64) error {
	if c.broken {
		return ErrBroken
	}
	clk.Advance(c.AllreduceTime(bytes))
	return nil
}

// Bcast advances the clock by the broadcast cost, or fails if broken.
func (c *Communicator) Bcast(clk *vtime.Clock, bytes int64) error {
	if c.broken {
		return ErrBroken
	}
	clk.Advance(c.BcastTime(bytes))
	return nil
}

// collTime is the hierarchical ring model: volume-factor × (n-1)/n of the
// buffer per rank through min(NVLink, per-GPU injection share), plus hop
// latencies.
func collTime(cfg Config, n int, bytes int64, volumeFactor float64) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	nodes := (n + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	perGPU := cfg.NVLinkBW
	if nodes > 1 {
		gpusPerNode := float64(n) / float64(nodes)
		share := cfg.InjectionBW / gpusPerNode
		if share < perGPU {
			perGPU = share
		}
	}
	frac := float64(n-1) / float64(n)
	return volumeFactor*frac*float64(bytes)/perGPU + 2*float64(n-1)*cfg.RingLatency
}
