// Package checkpoint implements the in-memory checkpointing that the
// baseline's backward recovery rolls back to, plus the paper's Eq. (1)
// recovery-cost model.
//
// Matching the paper's evaluation setup, only memory checkpoints are
// modeled ("we've limited our focus to memory checkpoints"): saving is a
// local copy of model + optimizer state; parallel-file-system costs are
// out of scope.
package checkpoint

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
)

// Snapshot is one saved training state.
type Snapshot struct {
	Epoch      int
	Step       int // optimizer step within the epoch at save time
	Model      tensor.Vector
	Optimizer  tensor.Vector
	LR         float64
	WorldSize  int
	SavedAtSec float64 // virtual time of the save
}

// Bytes returns the snapshot's in-memory size.
func (s *Snapshot) Bytes() int64 {
	return (tensor.Vector(s.Model).Bytes()) + (tensor.Vector(s.Optimizer).Bytes()) + 64
}

// Store holds each worker's latest memory checkpoint. In Elastic Horovod
// the in-memory state object lives in the training script on every
// worker; the store is keyed by worker identity.
type Store struct {
	mu    sync.Mutex
	last  map[int]*Snapshot
	saves int
	loads int
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{last: make(map[int]*Snapshot)}
}

// Save records worker w's snapshot, replacing any earlier one (memory
// checkpointing keeps only the latest state).
func (st *Store) Save(w int, s *Snapshot) {
	cp := *s
	cp.Model = s.Model.Clone()
	cp.Optimizer = s.Optimizer.Clone()
	st.mu.Lock()
	st.last[w] = &cp
	st.saves++
	st.mu.Unlock()
}

// Load returns worker w's latest snapshot, or an error when none exists
// (a fresh worker has no local checkpoint — it must sync from survivors).
func (st *Store) Load(w int) (*Snapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.last[w]
	if !ok {
		return nil, fmt.Errorf("checkpoint: no snapshot for worker %d", w)
	}
	st.loads++
	cp := *s
	cp.Model = s.Model.Clone()
	cp.Optimizer = s.Optimizer.Clone()
	return &cp, nil
}

// Latest peeks at worker w's most recent snapshot without booking a
// load — the recovery-policy engine's candidate probe, which must not
// skew the save/load overhead accounting when rollback merely loses the
// cost comparison.
func (st *Store) Latest(w int) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.last[w]
	return s, ok
}

// AgeProbe adapts the store to the policy engine's checkpoint input
// (policy.Config.Checkpoint): a probe bound to worker w reporting
// whether a restore point exists and how stale it is, with `now`
// supplying the caller's clock (VClock seconds for simulated runs).
func (st *Store) AgeProbe(w int, now func() float64) func() (float64, bool) {
	return func() (float64, bool) {
		s, ok := st.Latest(w)
		if !ok {
			return 0, false
		}
		age := now() - s.SavedAtSec
		if age < 0 {
			age = 0
		}
		return age, true
	}
}

// Drop forgets worker w's snapshot (worker left the job).
func (st *Store) Drop(w int) {
	st.mu.Lock()
	delete(st.last, w)
	st.mu.Unlock()
}

// Stats reports save/load counts (for overhead accounting in tests).
func (st *Store) Stats() (saves, loads int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.saves, st.loads
}

// --- Eq. (1): cost model ---------------------------------------------------

// CostModel carries the per-event costs of checkpoint-based fault
// recovery, in seconds, as decomposed by the paper's Eq. (1).
type CostModel struct {
	SaveCost       float64 // C_checkpoint_saving: one save
	LoadCost       float64 // C_checkpoint_loading: one load at recovery
	ReconfigCost   float64 // C_re-configuration: rebuild communication context
	RecomputeCost  float64 // C_re-compute_from_checkpoint: lost work re-execution
	NewWorkerInit  float64 // C_new_worker_init: software init of joining workers
	SavesPerEpoch  float64 // freq_saving, in saves per epoch
	FaultsPerEpoch float64 // Count_fault, in faults per epoch
}

// FaultRecoveryCost evaluates Eq. (1) over one epoch:
//
//	C = C_save × freq_save + Count_fault × (C_load + C_reconfig +
//	    C_recompute + C_new_worker_init)
func (m CostModel) FaultRecoveryCost() float64 {
	return m.SaveCost*m.SavesPerEpoch +
		m.FaultsPerEpoch*(m.LoadCost+m.ReconfigCost+m.RecomputeCost+m.NewWorkerInit)
}

// RecomputeForInterval models C_re-compute as the expected re-execution
// time when checkpoints are taken every intervalSec of training: on
// average half an interval of work is lost per fault.
func RecomputeForInterval(intervalSec float64) float64 {
	return intervalSec / 2
}

// OptimalInterval returns the checkpoint interval minimizing
// save-plus-recompute cost for a given fault rate (Young's
// approximation: sqrt(2 × C_save / λ)).
func OptimalInterval(saveCost, faultsPerSec float64) float64 {
	if faultsPerSec <= 0 {
		return 0 // never checkpoint if nothing fails
	}
	return math.Sqrt(2 * saveCost / faultsPerSec)
}
