package checkpoint

import (
	"sync"
	"testing"

	"repro/internal/tensor"
	"repro/internal/vtime"
)

func pfsSnap(n int) *Snapshot {
	return &Snapshot{Epoch: 1, Model: tensor.New(n)}
}

func TestPFSSaveLoadRoundTrip(t *testing.T) {
	p := NewPFS()
	var clk vtime.Clock
	s := pfsSnap(1000)
	s.Model[5] = 7
	p.Save(&clk, 3, s)
	got, err := p.Load(&clk, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model[5] != 7 {
		t.Fatalf("Model[5] = %v", got.Model[5])
	}
	if _, err := p.Load(&clk, 99); err == nil {
		t.Fatal("missing snapshot should error")
	}
	w, r := p.Traffic()
	if w <= 0 || r <= 0 {
		t.Fatalf("traffic = (%d, %d)", w, r)
	}
}

func TestPFSChargesTransferTime(t *testing.T) {
	p := NewPFS()
	var clk vtime.Clock
	s := pfsSnap(25_000_000) // 100 MB
	p.Save(&clk, 0, s)
	want := p.OpenLatency + float64(s.Bytes())/p.WriteBW
	if got := clk.Now(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("save time = %v, want ~%v", got, want)
	}
}

func TestPFSBandwidthSharing(t *testing.T) {
	// Two concurrent writers serialize on the shared pipe: the later one
	// finishes roughly twice as late as a lone writer.
	p := NewPFS()
	var a, b vtime.Clock
	s := pfsSnap(25_000_000)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.Save(&a, 0, s) }()
	go func() { defer wg.Done(); p.Save(&b, 1, s) }()
	wg.Wait()
	transfer := float64(s.Bytes()) / p.WriteBW
	later := a.Now()
	if b.Now() > later {
		later = b.Now()
	}
	// Both transfers serialize on the shared pipe: the later finisher pays
	// its open latency plus two full transfer slots.
	want := p.OpenLatency + 2*transfer
	if later < want*0.99 {
		t.Fatalf("second writer finished at %v, want >= %v", later, want)
	}
}

func TestPFSIsolation(t *testing.T) {
	p := NewPFS()
	var clk vtime.Clock
	s := pfsSnap(4)
	p.Save(&clk, 0, s)
	s.Model[0] = 42
	got, _ := p.Load(&clk, 0)
	if got.Model[0] != 0 {
		t.Fatal("PFS did not deep-copy on save")
	}
}

func TestMemoryVsPFSTable(t *testing.T) {
	rows := MemoryVsPFSTable(98<<20, []int{6, 24, 96}, 10e9)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// PFS cost must grow with worker count; memory cost must not.
	if rows[0][1] != rows[2][1] {
		t.Fatal("memory cost should be scale-invariant")
	}
	if !(rows[2][2] > rows[0][2]) {
		t.Fatalf("PFS cost should grow with writers: %v", rows)
	}
}

func TestPFSSaveTime(t *testing.T) {
	p := NewPFS()
	one := p.SaveTime(1, 100<<20)
	many := p.SaveTime(24, 100<<20)
	// Transfer time scales with writer count; the open latency amortizes.
	if !(many-p.OpenLatency > (one-p.OpenLatency)*23.9) {
		t.Fatalf("24 writers should cost ~24x the transfer: %v vs %v", one, many)
	}
}
