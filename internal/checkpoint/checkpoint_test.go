package checkpoint

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func snap(epoch int, v float32) *Snapshot {
	return &Snapshot{
		Epoch: epoch,
		Model: tensor.Vector{v, v + 1},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := NewStore()
	st.Save(3, snap(5, 1))
	got, err := st.Load(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 5 || got.Model[0] != 1 {
		t.Fatalf("Load = %+v", got)
	}
}

func TestLoadMissing(t *testing.T) {
	st := NewStore()
	if _, err := st.Load(9); err == nil {
		t.Fatal("Load of missing worker should fail")
	}
}

func TestSaveIsolation(t *testing.T) {
	st := NewStore()
	s := snap(1, 1)
	st.Save(0, s)
	s.Model[0] = 99 // caller mutates after save
	got, _ := st.Load(0)
	if got.Model[0] != 1 {
		t.Fatal("Save did not deep-copy the snapshot")
	}
	got.Model[0] = 77 // loader mutates
	again, _ := st.Load(0)
	if again.Model[0] != 1 {
		t.Fatal("Load did not deep-copy the snapshot")
	}
}

func TestSaveReplaces(t *testing.T) {
	st := NewStore()
	st.Save(0, snap(1, 1))
	st.Save(0, snap(2, 2))
	got, _ := st.Load(0)
	if got.Epoch != 2 {
		t.Fatalf("latest snapshot epoch = %d, want 2", got.Epoch)
	}
}

func TestDrop(t *testing.T) {
	st := NewStore()
	st.Save(0, snap(1, 1))
	st.Drop(0)
	if _, err := st.Load(0); err == nil {
		t.Fatal("dropped snapshot should be gone")
	}
}

func TestStats(t *testing.T) {
	st := NewStore()
	st.Save(0, snap(1, 1))
	st.Save(1, snap(1, 1))
	st.Load(0)
	saves, loads := st.Stats()
	if saves != 2 || loads != 1 {
		t.Fatalf("Stats = (%d, %d)", saves, loads)
	}
}

func TestSnapshotBytes(t *testing.T) {
	s := &Snapshot{Model: tensor.New(10), Optimizer: tensor.New(5)}
	if got := s.Bytes(); got != 40+20+64 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestEq1FaultRecoveryCost(t *testing.T) {
	m := CostModel{
		SaveCost:       0.5,
		LoadCost:       0.3,
		ReconfigCost:   10,
		RecomputeCost:  20,
		NewWorkerInit:  5,
		SavesPerEpoch:  4,
		FaultsPerEpoch: 2,
	}
	want := 0.5*4 + 2*(0.3+10+20+5)
	if got := m.FaultRecoveryCost(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eq1 = %v, want %v", got, want)
	}
}

func TestEq1TradeOff(t *testing.T) {
	// More frequent checkpoints: higher save cost, lower recompute cost.
	base := CostModel{SaveCost: 1, LoadCost: 0, ReconfigCost: 0, NewWorkerInit: 0, FaultsPerEpoch: 1}
	epochSec := 100.0

	sparse := base
	sparse.SavesPerEpoch = 1
	sparse.RecomputeCost = RecomputeForInterval(epochSec / 1)

	dense := base
	dense.SavesPerEpoch = 20
	dense.RecomputeCost = RecomputeForInterval(epochSec / 20)

	if !(dense.FaultRecoveryCost() < sparse.FaultRecoveryCost()) {
		t.Fatalf("with faults, dense checkpoints should win: dense=%v sparse=%v",
			dense.FaultRecoveryCost(), sparse.FaultRecoveryCost())
	}

	// Without faults, saving is pure overhead.
	sparse.FaultsPerEpoch = 0
	dense.FaultsPerEpoch = 0
	if !(dense.FaultRecoveryCost() > sparse.FaultRecoveryCost()) {
		t.Fatal("without faults, sparse checkpoints should win")
	}
}

func TestRecomputeForInterval(t *testing.T) {
	if got := RecomputeForInterval(10); got != 5 {
		t.Fatalf("RecomputeForInterval = %v", got)
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young's approximation: sqrt(2*C/λ).
	got := OptimalInterval(2, 1.0/3600)
	want := math.Sqrt(2 * 2 * 3600)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("OptimalInterval = %v, want %v", got, want)
	}
	if OptimalInterval(2, 0) != 0 {
		t.Fatal("zero fault rate should give 0 (never checkpoint)")
	}
}
