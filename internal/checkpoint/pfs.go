package checkpoint

import (
	"fmt"
	"sync"

	"repro/internal/vtime"
)

// PFS models a parallel-file-system checkpoint target — the case the
// paper's evaluation deliberately excludes ("we do not delve into the
// costs associated with saving and loading checkpoints on parallel file
// system"). It is provided as an extension so the exclusion can be
// quantified: PFS bandwidth is shared across concurrent writers, so
// checkpoint costs grow with both model size and writer count, unlike the
// node-local memory checkpoints of the main evaluation.
type PFS struct {
	mu sync.Mutex
	// WriteBW and ReadBW are the file system's aggregate bandwidths.
	WriteBW float64
	ReadBW  float64
	// OpenLatency is charged per file open (metadata server round trip).
	OpenLatency float64

	objects map[string]*Snapshot
	// busyUntil models bandwidth sharing: transfers serialize against the
	// aggregate pipe (a simple but effective congestion model).
	writeBusyUntil float64
	readBusyUntil  float64
	bytesWritten   int64
	bytesRead      int64
}

// NewPFS returns a PFS with Summit-like Alluxio/GPFS-ish defaults:
// 2.5 TB/s aggregate is the machine's number, but a single job sees a
// far smaller share; 20 GB/s write / 40 GB/s read are realistic job-level
// aggregates.
func NewPFS() *PFS {
	return &PFS{
		WriteBW:     20e9,
		ReadBW:      40e9,
		OpenLatency: 2e-3,
		objects:     make(map[string]*Snapshot),
	}
}

// Save writes worker w's snapshot to the shared file system, charging clk
// the open latency plus this transfer's slot on the shared write pipe.
func (p *PFS) Save(clk *vtime.Clock, w int, s *Snapshot) {
	cp := *s
	cp.Model = s.Model.Clone()
	cp.Optimizer = s.Optimizer.Clone()
	bytes := cp.Bytes()

	clk.Advance(p.OpenLatency)
	p.mu.Lock()
	start := clk.Now()
	if p.writeBusyUntil > start {
		start = p.writeBusyUntil
	}
	end := start + float64(bytes)/p.WriteBW
	p.writeBusyUntil = end
	p.objects[key(w)] = &cp
	p.bytesWritten += bytes
	p.mu.Unlock()
	clk.AdvanceTo(end)
}

// Load reads worker w's snapshot back, charging clk analogously.
func (p *PFS) Load(clk *vtime.Clock, w int) (*Snapshot, error) {
	clk.Advance(p.OpenLatency)
	p.mu.Lock()
	s, ok := p.objects[key(w)]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("checkpoint: no PFS snapshot for worker %d", w)
	}
	bytes := s.Bytes()
	start := clk.Now()
	if p.readBusyUntil > start {
		start = p.readBusyUntil
	}
	end := start + float64(bytes)/p.ReadBW
	p.readBusyUntil = end
	p.bytesRead += bytes
	cp := *s
	cp.Model = s.Model.Clone()
	cp.Optimizer = s.Optimizer.Clone()
	p.mu.Unlock()
	clk.AdvanceTo(end)
	return &cp, nil
}

// Traffic reports total bytes written and read.
func (p *PFS) Traffic() (written, read int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesWritten, p.bytesRead
}

func key(w int) string { return fmt.Sprintf("ckpt/%d", w) }

// SaveTime predicts the wall time for n workers saving size-byte
// snapshots concurrently: the shared pipe serializes them.
func (p *PFS) SaveTime(n int, size int64) float64 {
	return p.OpenLatency + float64(n)*float64(size)/p.WriteBW
}

// MemoryVsPFSTable contrasts per-checkpoint costs of memory vs PFS
// checkpointing for a model state size and worker counts — quantifying
// how much the paper's memory-checkpoint assumption flatters the
// baseline.
func MemoryVsPFSTable(stateBytes int64, workers []int, memCopyBW float64) [][3]string {
	p := NewPFS()
	var rows [][3]string
	for _, n := range workers {
		mem := float64(stateBytes) / memCopyBW
		pfs := p.SaveTime(n, stateBytes)
		rows = append(rows, [3]string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", mem),
			fmt.Sprintf("%.4f", pfs),
		})
	}
	return rows
}
