// Package optimizer implements the optimizers the training loops use
// (SGD, SGD with momentum, Adam) plus the learning-rate policies elastic
// training needs when the worker count changes: linear scaling with the
// effective batch size and gradual warmup (Goyal et al., cited by the
// paper as the standard remedy for convergence at scale).
package optimizer

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from gradients. Implementations carry
// per-parameter state (momentum, moments) that is part of the training
// state checkpoints and newcomer synchronization must include.
type Optimizer interface {
	// Step applies one update. params and grads are parallel tensor lists.
	Step(params, grads []tensor.Vector)
	// LR returns the current learning rate.
	LR() float64
	// SetLR overrides the base learning rate (elastic rescaling).
	SetLR(lr float64)
	// State returns a flat snapshot of optimizer state (may be empty).
	State() tensor.Vector
	// SetState restores a snapshot produced by State.
	SetState(tensor.Vector)
	// Name identifies the optimizer.
	Name() string
}

// --- SGD (optionally with momentum) --------------------------------------

// SGD is stochastic gradient descent with optional Nesterov-free momentum.
type SGD struct {
	lr       float64
	momentum float64
	vel      []tensor.Vector
}

// NewSGD returns plain SGD when momentum is 0.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum}
}

func (s *SGD) Name() string     { return "sgd" }
func (s *SGD) LR() float64      { return s.lr }
func (s *SGD) SetLR(lr float64) { s.lr = lr }

func (s *SGD) Step(params, grads []tensor.Vector) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optimizer: %d params vs %d grads", len(params), len(grads)))
	}
	if s.momentum == 0 {
		for i, p := range params {
			p.AXPY(float32(-s.lr), grads[i])
		}
		return
	}
	if s.vel == nil {
		s.vel = zerosLike(params)
	}
	mu := float32(s.momentum)
	for i, p := range params {
		v := s.vel[i]
		g := grads[i]
		for j := range v {
			v[j] = mu*v[j] + g[j]
		}
		p.AXPY(float32(-s.lr), v)
	}
}

func (s *SGD) State() tensor.Vector {
	if s.vel == nil {
		return nil
	}
	return tensor.Concat(s.vel)
}

func (s *SGD) SetState(flat tensor.Vector) {
	if len(flat) == 0 {
		s.vel = nil
		return
	}
	if s.vel == nil {
		panic("optimizer: SetState before shapes known; call Step once or seed velocities")
	}
	tensor.SplitLike(flat, s.vel)
}

// EnsureState allocates velocity buffers shaped like params so that
// SetState can restore into a fresh optimizer (newcomer initialization).
func (s *SGD) EnsureState(params []tensor.Vector) {
	if s.momentum != 0 && s.vel == nil {
		s.vel = zerosLike(params)
	}
}

// --- Adam ----------------------------------------------------------------

// Adam implements the Adam optimizer.
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  []tensor.Vector
}

// NewAdam returns Adam with standard defaults for unset values.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
}

func (a *Adam) Name() string     { return "adam" }
func (a *Adam) LR() float64      { return a.lr }
func (a *Adam) SetLR(lr float64) { a.lr = lr }

func (a *Adam) Step(params, grads []tensor.Vector) {
	if a.m == nil {
		a.m = zerosLike(params)
		a.v = zerosLike(params)
	}
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p {
			gj := float64(g[j])
			mj := a.beta1*float64(m[j]) + (1-a.beta1)*gj
			vj := a.beta2*float64(v[j]) + (1-a.beta2)*gj*gj
			m[j] = float32(mj)
			v[j] = float32(vj)
			p[j] -= float32(a.lr * (mj / b1c) / (math.Sqrt(vj/b2c) + a.eps))
		}
	}
}

func (a *Adam) State() tensor.Vector {
	if a.m == nil {
		return tensor.Vector{float32(a.t)}
	}
	out := tensor.Vector{float32(a.t)}
	out = append(out, tensor.Concat(a.m)...)
	out = append(out, tensor.Concat(a.v)...)
	return out
}

func (a *Adam) SetState(flat tensor.Vector) {
	if len(flat) == 0 {
		a.t, a.m, a.v = 0, nil, nil
		return
	}
	a.t = int(flat[0])
	rest := flat[1:]
	if a.m == nil {
		panic("optimizer: Adam.SetState before EnsureState")
	}
	half := len(rest) / 2
	tensor.SplitLike(rest[:half], a.m)
	tensor.SplitLike(rest[half:], a.v)
}

// EnsureState allocates moment buffers shaped like params.
func (a *Adam) EnsureState(params []tensor.Vector) {
	if a.m == nil {
		a.m = zerosLike(params)
		a.v = zerosLike(params)
	}
}

// --- learning-rate policy -------------------------------------------------

// LRPolicy computes the learning rate under elastic worker-count changes:
// linear scaling with the worker count relative to a reference, plus a
// warmup ramp over the first WarmupSteps after any size change.
type LRPolicy struct {
	BaseLR      float64 // LR at RefWorkers
	RefWorkers  int
	WarmupSteps int

	target      float64
	start       float64
	sinceChange int
}

// NewLRPolicy returns a policy with the given base configuration.
func NewLRPolicy(baseLR float64, refWorkers, warmupSteps int) *LRPolicy {
	p := &LRPolicy{BaseLR: baseLR, RefWorkers: refWorkers, WarmupSteps: warmupSteps}
	p.target = baseLR
	p.start = baseLR
	p.sinceChange = warmupSteps // no initial warmup
	return p
}

// Resize adjusts the target LR for a new worker count (linear scaling) and
// restarts the warmup ramp from the current LR. Without warmup the ramp is
// unused, and the start is pinned to the new target so that the policy
// state is a pure function of the final worker count — overlapping
// failure recoveries can resize different ranks a different number of
// times, and any path-dependent state would diverge replicas.
func (p *LRPolicy) Resize(workers int) {
	cur := p.LRAt()
	p.target = p.BaseLR * float64(workers) / float64(p.RefWorkers)
	if p.WarmupSteps == 0 {
		p.start = p.target
	} else {
		p.start = cur
	}
	p.sinceChange = 0
}

// Tick advances one optimizer step and returns the LR to use.
func (p *LRPolicy) Tick() float64 {
	lr := p.LRAt()
	if p.sinceChange < p.WarmupSteps {
		p.sinceChange++
	}
	return lr
}

// Snapshot exports the policy's dynamic state (target, ramp start, steps
// since the last resize) for state synchronization: a worker joining
// mid-ramp must adopt the survivors' ramp exactly or replicas diverge.
func (p *LRPolicy) Snapshot() (target, start float64, sinceChange int) {
	return p.target, p.start, p.sinceChange
}

// Restore overwrites the dynamic state from a snapshot.
func (p *LRPolicy) Restore(target, start float64, sinceChange int) {
	p.target = target
	p.start = start
	p.sinceChange = sinceChange
}

// LRAt returns the current LR without advancing.
func (p *LRPolicy) LRAt() float64 {
	if p.WarmupSteps == 0 || p.sinceChange >= p.WarmupSteps {
		return p.target
	}
	f := float64(p.sinceChange) / float64(p.WarmupSteps)
	return p.start + (p.target-p.start)*f
}

func zerosLike(params []tensor.Vector) []tensor.Vector {
	out := make([]tensor.Vector, len(params))
	for i, p := range params {
		out[i] = tensor.New(len(p))
	}
	return out
}
