package optimizer

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func params1(v float32) []tensor.Vector { return []tensor.Vector{{v}} }

func TestSGDPlainStep(t *testing.T) {
	opt := NewSGD(0.1, 0)
	p := params1(1.0)
	opt.Step(p, params1(2.0)) // p -= 0.1*2
	if math.Abs(float64(p[0][0])-0.8) > 1e-6 {
		t.Fatalf("p = %v, want 0.8", p[0][0])
	}
	if opt.Name() != "sgd" || opt.LR() != 0.1 {
		t.Fatal("metadata wrong")
	}
	opt.SetLR(0.2)
	if opt.LR() != 0.2 {
		t.Fatal("SetLR failed")
	}
	if opt.State() != nil {
		t.Fatal("plain SGD should have empty state")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt := NewSGD(0.1, 0.9)
	p := params1(0)
	opt.Step(p, params1(1)) // v=1, p=-0.1
	opt.Step(p, params1(1)) // v=1.9, p=-0.29
	if math.Abs(float64(p[0][0])+0.29) > 1e-6 {
		t.Fatalf("p = %v, want -0.29", p[0][0])
	}
	if got := opt.State(); len(got) != 1 || math.Abs(float64(got[0])-1.9) > 1e-6 {
		t.Fatalf("State = %v, want [1.9]", got)
	}
}

func TestSGDStateRoundTrip(t *testing.T) {
	opt := NewSGD(0.1, 0.9)
	p := params1(0)
	opt.Step(p, params1(1))
	st := opt.State()

	fresh := NewSGD(0.1, 0.9)
	fresh.EnsureState(p)
	fresh.SetState(st)
	p2 := params1(-0.1)
	fresh.Step(p2, params1(1))

	opt.Step(p, params1(1))
	if p[0][0] != p2[0][0] {
		t.Fatalf("restored optimizer diverged: %v vs %v", p[0][0], p2[0][0])
	}
}

func TestSGDMismatchedShapesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0.1, 0).Step(params1(0), nil)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)^2; gradient 2(x-3).
	opt := NewAdam(0.1)
	p := params1(0)
	for i := 0; i < 500; i++ {
		g := params1(2 * (p[0][0] - 3))
		opt.Step(p, g)
	}
	if math.Abs(float64(p[0][0])-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", p[0][0])
	}
}

func TestAdamStateRoundTrip(t *testing.T) {
	opt := NewAdam(0.05)
	p := params1(1)
	for i := 0; i < 3; i++ {
		opt.Step(p, params1(0.5))
	}
	st := opt.State()
	v1 := p[0][0]

	fresh := NewAdam(0.05)
	fresh.EnsureState(p)
	fresh.SetState(st)
	pa := params1(v1)
	pb := params1(v1)
	fresh.Step(pa, params1(0.5))
	opt.Step(pb, params1(0.5))
	if pa[0][0] != pb[0][0] {
		t.Fatalf("restored Adam diverged: %v vs %v", pa[0][0], pb[0][0])
	}
}

func TestAdamSetStateEmptyResets(t *testing.T) {
	opt := NewAdam(0.1)
	p := params1(0)
	opt.Step(p, params1(1))
	opt.SetState(nil)
	if st := opt.State(); len(st) != 1 || st[0] != 0 {
		t.Fatalf("reset state = %v", st)
	}
}

func TestLRPolicyLinearScaling(t *testing.T) {
	pol := NewLRPolicy(0.1, 12, 0)
	if got := pol.Tick(); got != 0.1 {
		t.Fatalf("initial LR = %v", got)
	}
	pol.Resize(24)
	if got := pol.Tick(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("LR after doubling workers = %v, want 0.2", got)
	}
	pol.Resize(6)
	if got := pol.Tick(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("LR after shrinking = %v, want 0.05", got)
	}
}

func TestLRPolicyWarmupRamp(t *testing.T) {
	pol := NewLRPolicy(0.1, 12, 10)
	// No warmup initially.
	if got := pol.Tick(); got != 0.1 {
		t.Fatalf("initial LR = %v, want no warmup at start", got)
	}
	pol.Resize(24) // target 0.2, ramp from 0.1 over 10 steps
	first := pol.Tick()
	if first != 0.1 {
		t.Fatalf("warmup step 0 = %v, want start 0.1", first)
	}
	var last float64
	for i := 0; i < 15; i++ {
		last = pol.Tick()
	}
	if math.Abs(last-0.2) > 1e-12 {
		t.Fatalf("post-warmup LR = %v, want 0.2", last)
	}
	// Ramp must be monotone.
	pol2 := NewLRPolicy(0.1, 12, 5)
	pol2.Resize(24)
	prev := -1.0
	for i := 0; i < 7; i++ {
		lr := pol2.Tick()
		if lr < prev {
			t.Fatalf("warmup not monotone: %v after %v", lr, prev)
		}
		prev = lr
	}
}
