package kvstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vtime"
)

func newTest() *Store {
	return New(Config{OpLatency: 1e-3, PollInterval: 10e-3})
}

func TestPutGet(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	s.Put(&clk, "a", []byte("x"))
	v, ok := s.Get(&clk, "a")
	if !ok || string(v) != "x" {
		t.Fatalf("Get = (%q, %v)", v, ok)
	}
	if _, ok := s.Get(&clk, "missing"); ok {
		t.Fatal("Get(missing) should report absent")
	}
	// Two ops for put+get at minimum... plus visibility alignment.
	if clk.Now() < 3e-3 {
		t.Fatalf("clock %v, want >= 3 op latencies", clk.Now())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	buf := []byte("abc")
	s.Put(&clk, "k", buf)
	buf[0] = 'z' // caller mutates after Put; store must be unaffected
	v, _ := s.Get(&clk, "k")
	if string(v) != "abc" {
		t.Fatalf("store did not copy on Put: %q", v)
	}
	v[0] = 'q'
	v2, _ := s.Get(&clk, "k")
	if string(v2) != "abc" {
		t.Fatalf("store did not copy on Get: %q", v2)
	}
}

func TestDeleteAndPrefix(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	s.Put(&clk, "r1/a", nil)
	s.Put(&clk, "r1/b", nil)
	s.Put(&clk, "r2/a", nil)
	s.Add(&clk, "r1/count", 3)
	s.Delete(&clk, "r1/a")
	if _, ok := s.Get(&clk, "r1/a"); ok {
		t.Fatal("deleted key still present")
	}
	s.DeletePrefix(&clk, "r1/")
	if got := s.List(&clk, "r1/"); len(got) != 0 {
		t.Fatalf("prefix delete left %v", got)
	}
	if got := s.Counter(&clk, "r1/count"); got != 0 {
		t.Fatalf("prefix delete left counter %d", got)
	}
	if got := s.List(&clk, "r2/"); len(got) != 1 {
		t.Fatalf("unrelated prefix affected: %v", got)
	}
}

func TestListSorted(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	for _, k := range []string{"p/3", "p/1", "p/2"} {
		s.Put(&clk, k, nil)
	}
	got := s.List(&clk, "p/")
	want := []string{"p/1", "p/2", "p/3"}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestWaitBlocksUntilPut(t *testing.T) {
	s := newTest()
	var waiter, writer vtime.Clock
	writer.Advance(5) // writer is ahead in virtual time

	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var ok bool
	go func() {
		defer wg.Done()
		got, ok = s.Wait(&waiter, "late", nil)
	}()
	s.Put(&writer, "late", []byte("v"))
	wg.Wait()
	if !ok || string(got) != "v" {
		t.Fatalf("Wait = (%q, %v)", got, ok)
	}
	// Waiter cannot observe the value before it was written (causality):
	// write happened at writer time 5+op; waiter must land at or after
	// write + poll interval.
	if waiter.Now() < 5+1e-3+10e-3 {
		t.Fatalf("waiter clock %v violates causality", waiter.Now())
	}
}

func TestWaitImmediateNoPollPenalty(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	s.Put(&clk, "k", nil) // clk now 1ms, write visible at 1ms
	before := clk.Now()
	if _, ok := s.Wait(&clk, "k", nil); !ok {
		t.Fatal("Wait on existing key failed")
	}
	// Value already present: only one op latency, no poll rounding.
	if got := clk.Now() - before; got > 1.1e-3 {
		t.Fatalf("immediate Wait charged %v, want ~1 op", got)
	}
}

func TestWaitCancel(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Wait(&clk, "never", cancel)
		done <- ok
	}()
	close(cancel)
	if ok := <-done; ok {
		t.Fatal("canceled Wait returned ok=true")
	}
}

func TestWaitN(t *testing.T) {
	s := newTest()
	clks := make([]vtime.Clock, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Put(&clks[i], fmt.Sprintf("rdv/%d", i), nil)
			keys, ok := s.WaitN(&clks[i], "rdv/", 4, nil)
			if !ok || len(keys) != 4 {
				t.Errorf("rank %d WaitN = (%v, %v)", i, keys, ok)
			}
		}(i)
	}
	wg.Wait()
}

func TestCounters(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	if got := s.Add(&clk, "c", 2); got != 2 {
		t.Fatalf("Add = %d, want 2", got)
	}
	if got := s.Add(&clk, "c", 3); got != 5 {
		t.Fatalf("Add = %d, want 5", got)
	}
	if got := s.Counter(&clk, "c"); got != 5 {
		t.Fatalf("Counter = %d, want 5", got)
	}
	if got := s.Counter(&clk, "absent"); got != 0 {
		t.Fatalf("absent Counter = %d, want 0", got)
	}
}

func TestWaitAtLeast(t *testing.T) {
	s := newTest()
	var a, b vtime.Clock
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ok := s.WaitAtLeast(&a, "arrivals", 2, nil)
		if !ok || v < 2 {
			t.Errorf("WaitAtLeast = (%d, %v)", v, ok)
		}
	}()
	s.Add(&b, "arrivals", 1)
	s.Add(&b, "arrivals", 1)
	wg.Wait()
}

func TestWaitAtLeastCancel(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.WaitAtLeast(&clk, "never", 10, cancel)
		done <- ok
	}()
	close(cancel)
	if ok := <-done; ok {
		t.Fatal("canceled WaitAtLeast returned ok=true")
	}
}

func TestConcurrentAddsAreAtomic(t *testing.T) {
	s := newTest()
	const workers, each = 8, 500
	var wg sync.WaitGroup
	clks := make([]vtime.Clock, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Add(&clks[w], "n", 1)
			}
		}(w)
	}
	wg.Wait()
	var clk vtime.Clock
	if got := s.Counter(&clk, "n"); got != workers*each {
		t.Fatalf("Counter = %d, want %d", got, workers*each)
	}
}

func TestLen(t *testing.T) {
	s := newTest()
	var clk vtime.Clock
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Put(&clk, "a", nil)
	s.Put(&clk, "b", nil)
	s.Put(&clk, "a", nil) // overwrite
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}
