// Package kvstore implements the rendezvous key-value service used by the
// Gloo bootstrap and the elastic driver, standing in for the etcd/Redis
// style stores that Elastic Horovod's rendezvous relies on.
//
// The store is shared in memory, but every operation charges the calling
// process's virtual clock with a configurable round-trip latency, and
// blocking waits complete no earlier than the (virtual) time the awaited
// value was written plus a polling interval — reproducing the cost profile
// that makes KV-based rendezvous expensive at scale in the paper.
package kvstore

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/vtime"
)

// Config is the store's cost model.
type Config struct {
	// OpLatency is the client-observed round-trip time of a single store
	// operation (network + service).
	OpLatency float64
	// PollInterval is how often a blocked waiter polls the store; waits
	// that actually block complete on a poll boundary.
	PollInterval float64
}

// DefaultConfig matches a LAN-attached etcd-like service.
func DefaultConfig() Config {
	return Config{OpLatency: 0.5e-3, PollInterval: 10e-3}
}

type entry struct {
	value   []byte
	wroteAt float64 // virtual time the write became visible
}

// Store is a shared KV service with virtual-time accounting. All methods
// are safe for concurrent use.
type Store struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond
	data map[string]entry
	cnt  map[string]counter
}

type counter struct {
	value   int64
	wroteAt float64
}

// New creates an empty store with the given cost model.
func New(cfg Config) *Store {
	s := &Store{
		cfg:  cfg,
		data: make(map[string]entry),
		cnt:  make(map[string]counter),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Config returns the store's cost model.
func (s *Store) Config() Config { return s.cfg }

// Put writes key=value, charging clk one operation. The write becomes
// visible at the writer's post-operation time.
func (s *Store) Put(clk *vtime.Clock, key string, value []byte) {
	clk.Advance(s.cfg.OpLatency)
	at := clk.Now()
	v := append([]byte(nil), value...)
	s.mu.Lock()
	s.data[key] = entry{value: v, wroteAt: at}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Get reads a key, charging clk one operation. ok is false when absent.
func (s *Store) Get(clk *vtime.Clock, key string) (value []byte, ok bool) {
	clk.Advance(s.cfg.OpLatency)
	s.mu.Lock()
	e, ok := s.data[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	clk.AdvanceTo(e.wroteAt + s.cfg.OpLatency)
	return append([]byte(nil), e.value...), true
}

// Delete removes a key, charging clk one operation.
func (s *Store) Delete(clk *vtime.Clock, key string) {
	clk.Advance(s.cfg.OpLatency)
	s.mu.Lock()
	delete(s.data, key)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// DeletePrefix removes every key with the given prefix (namespace
// teardown between rendezvous rounds), charging clk one operation.
func (s *Store) DeletePrefix(clk *vtime.Clock, prefix string) {
	clk.Advance(s.cfg.OpLatency)
	s.mu.Lock()
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			delete(s.data, k)
		}
	}
	for k := range s.cnt {
		if strings.HasPrefix(k, prefix) {
			delete(s.cnt, k)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// List returns the sorted keys carrying the given prefix, charging clk one
// operation.
func (s *Store) List(clk *vtime.Clock, prefix string) []string {
	clk.Advance(s.cfg.OpLatency)
	s.mu.Lock()
	var keys []string
	var latest float64
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
			if e.wroteAt > latest {
				latest = e.wroteAt
			}
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	clk.AdvanceTo(latest + s.cfg.OpLatency)
	return keys
}

// Wait blocks until key exists (or cancel is closed), then returns its
// value. The caller's clock lands on a poll boundary no earlier than the
// write time. Returns ok=false only when canceled.
func (s *Store) Wait(clk *vtime.Clock, key string, cancel <-chan struct{}) (value []byte, ok bool) {
	stop := s.watchCancel(cancel)
	defer stop()
	s.mu.Lock()
	for {
		if e, found := s.data[key]; found {
			s.mu.Unlock()
			s.chargeWait(clk, e.wroteAt)
			return append([]byte(nil), e.value...), true
		}
		if canceled(cancel) {
			s.mu.Unlock()
			return nil, false
		}
		s.cond.Wait()
	}
}

// WaitN blocks until at least n keys exist under prefix (or cancel closes)
// and returns them sorted. Returns ok=false only when canceled.
func (s *Store) WaitN(clk *vtime.Clock, prefix string, n int, cancel <-chan struct{}) (keys []string, ok bool) {
	stop := s.watchCancel(cancel)
	defer stop()
	s.mu.Lock()
	for {
		var got []string
		var latest float64
		for k, e := range s.data {
			if strings.HasPrefix(k, prefix) {
				got = append(got, k)
				if e.wroteAt > latest {
					latest = e.wroteAt
				}
			}
		}
		if len(got) >= n {
			s.mu.Unlock()
			sort.Strings(got)
			s.chargeWait(clk, latest)
			return got, true
		}
		if canceled(cancel) {
			s.mu.Unlock()
			return nil, false
		}
		s.cond.Wait()
	}
}

// Add atomically adds delta to a named counter and returns the new value,
// charging clk one operation. Counters live in a separate namespace from
// keys.
func (s *Store) Add(clk *vtime.Clock, key string, delta int64) int64 {
	clk.Advance(s.cfg.OpLatency)
	at := clk.Now()
	s.mu.Lock()
	c := s.cnt[key]
	c.value += delta
	if at > c.wroteAt {
		c.wroteAt = at
	}
	s.cnt[key] = c
	v := c.value
	s.cond.Broadcast()
	s.mu.Unlock()
	return v
}

// Counter returns the current value of a counter, charging clk one
// operation.
func (s *Store) Counter(clk *vtime.Clock, key string) int64 {
	clk.Advance(s.cfg.OpLatency)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cnt[key].value
}

// WaitAtLeast blocks until the counter reaches at least n (or cancel
// closes). Returns the observed value and ok=false only when canceled.
func (s *Store) WaitAtLeast(clk *vtime.Clock, key string, n int64, cancel <-chan struct{}) (int64, bool) {
	stop := s.watchCancel(cancel)
	defer stop()
	s.mu.Lock()
	for {
		c := s.cnt[key]
		if c.value >= n {
			s.mu.Unlock()
			s.chargeWait(clk, c.wroteAt)
			return c.value, true
		}
		if canceled(cancel) {
			s.mu.Unlock()
			return c.value, false
		}
		s.cond.Wait()
	}
}

// chargeWait advances clk for a completed wait: one op latency, and if the
// value appeared after the waiter arrived, completion rounds up to the
// next poll boundary after the write.
func (s *Store) chargeWait(clk *vtime.Clock, wroteAt float64) {
	arrived := clk.Now()
	clk.Advance(s.cfg.OpLatency)
	if wroteAt > arrived {
		clk.AdvanceTo(wroteAt + s.cfg.PollInterval)
	}
}

// watchCancel wakes all waiters when cancel closes so blocked Wait calls
// can observe it. Returns a stop func the caller must defer.
func (s *Store) watchCancel(cancel <-chan struct{}) func() {
	if cancel == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-done:
		}
	}()
	return func() { close(done) }
}

func canceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// Len reports the number of keys (not counters) currently stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
