// Package autopilot is the elasticity control loop: it watches
// membership (gossip verdicts surfaced as member-set changes) and the
// warm spare pool, and decides how the world should change — swap a
// spare in on a death instead of shrinking, scale up or down on a
// schedule or load signal, or hold. The controller is sans-IO in the
// style of internal/gossip: callers feed observations in and apply the
// returned Decision through their own machinery (ulfm.Grow over live
// communicators, rendezvous activation for bookkeeping), so the same
// loop drives the in-process clustertest harness and the elasticd
// daemon, and unit tests need no sockets.
//
// The newcomer state transfer lives in statexfer.go: model/optimizer
// state streamed chunked over the raw codec with a token-bucket
// bandwidth cap, entering at the next epoch boundary as the paper
// specifies.
package autopilot

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Kind classifies a Decision.
type Kind int

const (
	// KindHold: no change this boundary.
	KindHold Kind = iota
	// KindSwapIn: admit spares to replace observed deaths.
	KindSwapIn
	// KindScaleUp: admit spares to grow past the current world size.
	KindScaleUp
	// KindScaleDown: shrink the target world size.
	KindScaleDown

	decisionKinds = iota
)

func (k Kind) String() string {
	switch k {
	case KindHold:
		return "hold"
	case KindSwapIn:
		return "swap_in"
	case KindScaleUp:
		return "scale_up"
	case KindScaleDown:
		return "scale_down"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Decision is one control-loop verdict, applied by the caller at the
// next epoch boundary.
type Decision struct {
	Kind   Kind
	Admit  []transport.ProcID // spares to admit (SwapIn / ScaleUp)
	Target int                // desired world size after applying
	Reason string
}

// ScheduleStep scales the world by Delta at training step Step.
type ScheduleStep struct {
	Step  int
	Delta int
}

// ParseSchedule parses a -scale-policy flag value: comma-separated
// "step:delta" entries, e.g. "10:+2,200:-1". An empty string is an
// empty schedule.
func ParseSchedule(s string) ([]ScheduleStep, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []ScheduleStep
	for _, part := range strings.Split(s, ",") {
		step, delta, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("autopilot: schedule entry %q: want step:delta", part)
		}
		st, err := strconv.Atoi(step)
		if err != nil {
			return nil, fmt.Errorf("autopilot: schedule step %q: %v", step, err)
		}
		d, err := strconv.Atoi(strings.TrimPrefix(delta, "+"))
		if err != nil {
			return nil, fmt.Errorf("autopilot: schedule delta %q: %v", delta, err)
		}
		if d == 0 {
			return nil, fmt.Errorf("autopilot: schedule entry %q: zero delta", part)
		}
		out = append(out, ScheduleStep{Step: st, Delta: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out, nil
}

// Config parameterizes a Controller.
type Config struct {
	// Target is the desired steady-state world size.
	Target int
	// Schedule lists step-triggered scale events (sorted or not; the
	// controller sorts). Each fires once, at the first Decide whose step
	// is >= its Step.
	Schedule []ScheduleStep
	// Load, when non-nil, is sampled at every Decide; a reading above
	// LoadHigh scales up by one, below LoadLow scales down by one (after
	// the schedule, at most one load-driven step per Decide).
	Load              func() float64
	LoadHigh, LoadLow float64
	// Trace records decisions in the journal (nil = discard).
	Trace *trace.Recorder
	// Proc stamps trace records with the controlling process.
	Proc transport.ProcID
	// SwapGate, when set, delegates the swap-or-shrink call to the
	// recovery-policy engine (policy.Engine.GateSwap): a deaths-answering
	// swap-in is issued only if the gate approves it. Scheduled and
	// load-driven scale-ups are never gated — the policy engine only
	// owns failure recovery, not capacity planning.
	SwapGate func(deaths int) bool
}

// Controller is the sans-IO decision core. Not safe for concurrent use;
// callers that share one controller across worker goroutines (the
// clustertest harness does, so the loop survives rank-0 death) guard it
// with their own mutex.
type Controller struct {
	cfg     Config
	target  int
	members map[transport.ProcID]bool
	pool    []transport.ProcID
	deaths  int     // observed deaths not yet answered by a swap
	deathAt float64 // earliest unanswered death, for recovery latency
	fired   map[int]bool
}

// New builds a controller. Target <= 0 is taken from the first
// ObserveMembers call.
func New(cfg Config) *Controller {
	c := &Controller{
		cfg:     cfg,
		target:  cfg.Target,
		members: map[transport.ProcID]bool{},
		fired:   map[int]bool{},
	}
	sort.Slice(c.cfg.Schedule, func(i, j int) bool { return c.cfg.Schedule[i].Step < c.cfg.Schedule[j].Step })
	return c
}

// Target reports the current desired world size.
func (c *Controller) Target() int { return c.target }

// ObserveMembers feeds the current live member set at time now. Members
// that disappear since the previous observation are counted as deaths
// (the gossip verdict already arbitrated false positives upstream).
func (c *Controller) ObserveMembers(now float64, members []transport.ProcID) {
	next := make(map[transport.ProcID]bool, len(members))
	for _, p := range members {
		next[p] = true
	}
	if c.target <= 0 {
		c.target = len(members)
	}
	for p := range c.members {
		if !next[p] {
			if c.deaths == 0 {
				c.deathAt = now
			}
			c.deaths++
		}
	}
	c.members = next
}

// ObservePool feeds the current warm spare pool.
func (c *Controller) ObservePool(pool []transport.ProcID) {
	c.pool = append(c.pool[:0], pool...)
	obsSparePool.Set(int64(len(c.pool)))
}

// Pool returns the spares the controller currently believes are idle.
func (c *Controller) Pool() []transport.ProcID {
	return append([]transport.ProcID(nil), c.pool...)
}

// Decide computes the action for the epoch boundary at training step
// step, time now. Priority: replace deaths from the pool, then the
// schedule, then the load signal. The caller applies the decision
// (ulfm.Grow + state transfer) and reports back via Admitted or
// SwapFailed.
func (c *Controller) Decide(now float64, step int) Decision {
	d := c.decide(step)
	obsDecisions[d.Kind].Inc()
	if d.Kind != KindHold {
		c.cfg.Trace.Decision(now, int(c.cfg.Proc), step, d.Kind.String(), len(d.Admit), d.Target, d.Reason)
	}
	return d
}

func (c *Controller) decide(step int) Decision {
	// Schedule and load adjust the target even while a swap is pending;
	// the admit list below then covers both at once.
	reason := ""
	kind := KindHold
	for _, s := range c.cfg.Schedule {
		if step >= s.Step && !c.fired[s.Step] {
			c.fired[s.Step] = true
			c.target += s.Delta
			if s.Delta > 0 {
				kind, reason = KindScaleUp, fmt.Sprintf("schedule step %d: %+d", s.Step, s.Delta)
				obsScaleUps.Inc()
			} else {
				kind, reason = KindScaleDown, fmt.Sprintf("schedule step %d: %+d", s.Step, s.Delta)
				obsScaleDowns.Inc()
			}
		}
	}
	if c.cfg.Load != nil && kind == KindHold {
		switch v := c.cfg.Load(); {
		case v > c.cfg.LoadHigh && c.cfg.LoadHigh > 0:
			c.target++
			kind, reason = KindScaleUp, fmt.Sprintf("load %.2f > %.2f", v, c.cfg.LoadHigh)
			obsScaleUps.Inc()
		case v < c.cfg.LoadLow:
			c.target--
			kind, reason = KindScaleDown, fmt.Sprintf("load %.2f < %.2f", v, c.cfg.LoadLow)
			obsScaleDowns.Inc()
		}
	}

	missing := c.target - len(c.members)
	if missing > 0 && len(c.pool) > 0 {
		if kind == KindHold && c.deaths > 0 && c.cfg.SwapGate != nil && !c.cfg.SwapGate(c.deaths) {
			// The policy engine chose shrink over swap for this failure:
			// hold the pool. The deaths stay booked, so a later verdict
			// that does favor the pool can still answer them.
			obsSwapVetoes.Inc()
			return Decision{Kind: KindHold, Target: c.target, Reason: "swap vetoed by recovery policy"}
		}
		n := missing
		if n > len(c.pool) {
			n = len(c.pool)
		}
		admit := append([]transport.ProcID(nil), c.pool[:n]...)
		if kind == KindHold {
			kind = KindScaleUp
			if c.deaths > 0 {
				kind = KindSwapIn
			}
			reason = fmt.Sprintf("%d below target %d", missing, c.target)
		}
		return Decision{Kind: kind, Admit: admit, Target: c.target, Reason: reason}
	}
	if kind == KindScaleDown || kind == KindScaleUp {
		// Target moved but nothing to admit (scale-down, or empty pool).
		return Decision{Kind: kind, Target: c.target, Reason: reason}
	}
	return Decision{Kind: KindHold, Target: c.target}
}

// Admitted reports that the listed spares were successfully grown into
// the world (state transferred, entered at the epoch boundary). It
// moves them out of the pool and, if they answered deaths, records the
// swap and its recovery latency.
func (c *Controller) Admitted(now float64, procs []transport.ProcID) {
	for _, p := range procs {
		c.members[p] = true
		c.removeSpare(p)
		if c.deaths > 0 {
			c.deaths--
			obsSpareSwaps.Inc()
			obsSwapRecovery.Observe(now - c.deathAt)
		}
	}
	if c.deaths == 0 {
		c.deathAt = 0
	}
	obsSparePool.Set(int64(len(c.pool)))
}

// Evicted reports a planned scale-down departure before it happens, so
// the next ObserveMembers does not book the disappearance as a death
// (which would otherwise trigger a compensating swap-in).
func (c *Controller) Evicted(proc transport.ProcID) {
	delete(c.members, proc)
}

// SwapFailed reports that an admitted spare died before completing its
// swap-in (e.g. killed during state transfer). The spare is discarded
// from the pool; the death it was answering stays outstanding so the
// next Decide tries the next spare.
func (c *Controller) SwapFailed(proc transport.ProcID) {
	c.removeSpare(proc)
	obsSwapFailures.Inc()
	obsSparePool.Set(int64(len(c.pool)))
}

func (c *Controller) removeSpare(p transport.ProcID) {
	for i, s := range c.pool {
		if s == p {
			c.pool = append(c.pool[:i], c.pool[i+1:]...)
			return
		}
	}
}
