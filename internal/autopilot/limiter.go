package autopilot

import (
	"sync"
	"time"
)

// Limiter is a token-bucket bandwidth cap for the newcomer state stream.
// Tokens are bytes; Take blocks until the requested bytes are available.
// The clock and the blocking primitive are injectable so tests run the
// limiter on virtual time with zero real sleeps, while production uses
// wall time.
//
// The bucket starts full (burst bytes), so a transfer smaller than the
// burst goes out at line rate — the cap exists to protect the training
// collective from a long stream, not to slow a trivial one.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   float64 // clock reading at the last refill

	now   func() float64  // monotonic seconds
	sleep func(d float64) // block the caller for d seconds
}

// NewLimiter builds a wall-clock limiter. rate is bytes/second; burst is
// the bucket size in bytes (clamped up to one chunk's worth by Take, so
// any positive value is workable). rate <= 0 means unlimited.
func NewLimiter(rate, burst float64) *Limiter {
	start := time.Now()
	return newLimiter(rate, burst,
		func() float64 { return time.Since(start).Seconds() },
		func(d float64) { time.Sleep(time.Duration(d * float64(time.Second))) })
}

// NewLimiterFunc builds a limiter over caller-supplied clock and sleep
// functions — the test seam. sleep(d) must cause now() to advance by at
// least d eventually (e.g. vtime.Clock.Advance makes it immediate).
func NewLimiterFunc(rate, burst float64, now func() float64, sleep func(float64)) *Limiter {
	return newLimiter(rate, burst, now, sleep)
}

func newLimiter(rate, burst float64, now func() float64, sleep func(float64)) *Limiter {
	if burst <= 0 {
		burst = rate // default: one second of credit
	}
	return &Limiter{rate: rate, burst: burst, tokens: burst, last: now(), now: now, sleep: sleep}
}

// Take blocks until n bytes of credit are available, then spends them.
// A nil limiter or a non-positive rate never blocks.
func (l *Limiter) Take(n int) {
	if l == nil || l.rate <= 0 || n <= 0 {
		return
	}
	need := float64(n)
	for {
		l.mu.Lock()
		nowS := l.now()
		l.tokens += (nowS - l.last) * l.rate
		l.last = nowS
		limit := l.burst
		if need > limit {
			limit = need // oversize requests drain to exactly zero, never deadlock
		}
		if l.tokens > limit {
			l.tokens = limit
		}
		// Accept a sub-microbyte shortfall: refills accumulate floating-
		// point residue, and at large clock readings a residue-sized
		// sleep is below the clock's ULP, so exact credit could never be
		// reached again.
		if l.tokens >= need-1e-4 {
			l.tokens -= need
			l.mu.Unlock()
			return
		}
		wait := (need - l.tokens) / l.rate
		l.mu.Unlock()
		l.sleep(wait)
	}
}

// Rate reports the configured bytes/second (0 = unlimited).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	return l.rate
}
