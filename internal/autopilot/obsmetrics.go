package autopilot

// Control-loop and state-transfer metrics. The spare-pool gauge and the
// swap counter are the operator's first stop after a kill: a swap that
// worked leaves the pool one smaller and the counter one larger, with
// the recovery latency histogram recording how long the world ran
// degraded. The transfer histograms let the bandwidth cap be tuned
// against real state sizes.

import "repro/internal/obs"

var (
	obsSparePool = obs.Default().Gauge("autopilot_spare_pool_size",
		"Registered warm spares currently idle (not yet swapped in).")
	obsSpareSwaps = obs.Default().Counter("autopilot_spare_swaps_total",
		"Death verdicts answered by admitting a warm spare instead of shrinking.")
	obsScaleUps = obs.Default().Counter("autopilot_scale_ups_total",
		"Scale-up decisions issued by the control loop.")
	obsScaleDowns = obs.Default().Counter("autopilot_scale_downs_total",
		"Scale-down decisions issued by the control loop.")
	obsSwapFailures = obs.Default().Counter("autopilot_swap_failures_total",
		"Spare swap-ins that failed (newcomer died during admission or state transfer).")
	obsSwapVetoes = obs.Default().Counter("autopilot_swap_vetoes_total",
		"Deaths-answering swap-ins suppressed by the recovery-policy gate.")
	obsSwapRecovery = obs.Default().Histogram("autopilot_spare_swap_recovery_seconds",
		"Death observed to replacement admitted (VClock seconds).",
		obs.SecondsBuckets())
	obsXferBytes = obs.Default().Counter("autopilot_state_transfer_bytes_total",
		"Model/optimizer state bytes streamed to joining ranks.")
	obsXferSeconds = obs.Default().Histogram("autopilot_state_transfer_seconds",
		"Duration of one full newcomer state transfer (VClock seconds).",
		obs.SecondsBuckets())
	obsDecisions [decisionKinds]*obs.Counter
)

func init() {
	for k := range obsDecisions {
		obsDecisions[k] = obs.Default().Counter("autopilot_decisions_total",
			"Control-loop decisions by kind.", obs.L("kind", Kind(k).String()))
	}
}
