package autopilot

import (
	"fmt"
	"hash/crc32"

	"repro/internal/transport"
)

// Newcomer state transfer: the joining rank receives the model/optimizer
// state as a chunked stream over the plain endpoint tag space, below the
// communicator tag plane, so it can run concurrently with (and never
// collide with) live collectives. The stream is bandwidth-capped by a
// token bucket so a large state cannot stall the training collective
// sharing the wire, exactly the paper's requirement that newcomers join
// at epoch i+1 without slowing epoch i.
//
// Wire protocol (all on plain tags, clear of mpi's tagJoin=7 and the
// comm tag plane which always carries a context id in bits 32..63):
//
//	offer  (tag 8): StateOffer{Total, ChunkBytes, CRC, Step}
//	chunks (tag 9): []uint8 slices, rawU8 zero-copy path, in order
//	ack    (tag 10): StateAck{OK, CRC}
//
// The receiver verifies length and CRC32 before acking; the sender
// treats a missing or failed ack as a failed swap-in.
const (
	tagStateOffer = 8
	tagStateChunk = 9
	tagStateAck   = 10
)

// StateOffer announces a state stream to the joining rank.
type StateOffer struct {
	Total      int64  // total state bytes
	ChunkBytes int    // chunk size the sender will use
	CRC        uint32 // IEEE CRC32 of the full state
	Step       int64  // training step the state is valid at (epoch boundary)
}

// StateAck closes the handshake from the receiver.
type StateAck struct {
	OK  bool
	CRC uint32
}

func init() {
	transport.RegisterWireType(StateOffer{})
	transport.RegisterWireType(StateAck{})
}

// XferOptions configures one state transfer.
type XferOptions struct {
	// RateBytesPerSec caps the stream bandwidth (0 = unlimited).
	RateBytesPerSec float64
	// Burst is the token-bucket capacity in bytes (0 = one second of rate).
	Burst float64
	// ChunkBytes is the stream chunk size (0 = 256 KiB).
	ChunkBytes int
	// Limiter overrides the internally built token bucket — the vtime
	// test seam. When set, RateBytesPerSec and Burst are ignored.
	Limiter *Limiter
	// Step is stamped into the offer so the newcomer knows which epoch
	// boundary the state belongs to.
	Step int64
}

const defaultChunkBytes = 256 << 10

func (o XferOptions) limiter() *Limiter {
	if o.Limiter != nil {
		return o.Limiter
	}
	if o.RateBytesPerSec <= 0 {
		return nil
	}
	return NewLimiter(o.RateBytesPerSec, o.Burst)
}

// SendState streams state to the joining process dst: one offer, then
// bandwidth-capped chunks, then a blocking wait for the receiver's ack.
// It returns an error if the receiver dies mid-stream or reports a
// checksum mismatch — the caller records a failed swap and lets the next
// collective repair the newcomer out.
func SendState(ep transport.Endpoint, dst transport.ProcID, state []byte, opts XferOptions) error {
	chunk := opts.ChunkBytes
	if chunk <= 0 {
		chunk = defaultChunkBytes
	}
	lim := opts.limiter()
	self := ep.ID()
	start := ep.VClock().Now()

	offer := StateOffer{
		Total:      int64(len(state)),
		ChunkBytes: chunk,
		CRC:        crc32.ChecksumIEEE(state),
		Step:       opts.Step,
	}
	if err := ep.Send(dst, tagStateOffer, offer, 32); err != nil {
		return fmt.Errorf("autopilot: state offer to %d: %w", dst, err)
	}
	transport.Hit(self, transport.PointStateOffer)

	for off := 0; off < len(state); off += chunk {
		end := off + chunk
		if end > len(state) {
			end = len(state)
		}
		lim.Take(end - off)
		// Chunk slices are immutable views of state; Send does not copy
		// in-process, which is exactly the rawU8 zero-copy contract.
		if err := ep.Send(dst, tagStateChunk, state[off:end], int64(end-off)); err != nil {
			obsSwapFailures.Inc()
			return fmt.Errorf("autopilot: state chunk at %d/%d to %d: %w", off, len(state), dst, err)
		}
		transport.Hit(self, transport.PointStateChunk)
	}

	m, err := ep.Recv(dst, tagStateAck)
	if err != nil {
		obsSwapFailures.Inc()
		return fmt.Errorf("autopilot: state ack from %d: %w", dst, err)
	}
	ack, ok := m.Data.(StateAck)
	if !ok || !ack.OK || ack.CRC != offer.CRC {
		obsSwapFailures.Inc()
		return fmt.Errorf("autopilot: state stream to %d rejected (ack %+v)", dst, m.Data)
	}
	obsXferBytes.Add(uint64(len(state)))
	obsXferSeconds.Observe(ep.VClock().Now() - start)
	return nil
}

// RecvState blocks for a state stream from any sender and returns the
// reassembled state and the step it is valid at. The received bytes are
// verified against the offer's length and CRC32 and acked back; a
// mismatch acks failure and returns an error.
func RecvState(ep transport.Endpoint) (state []byte, step int64, err error) {
	m, err := ep.Recv(transport.AnySource, tagStateOffer)
	if err != nil {
		return nil, 0, fmt.Errorf("autopilot: state offer: %w", err)
	}
	offer, ok := m.Data.(StateOffer)
	if !ok {
		return nil, 0, fmt.Errorf("autopilot: unexpected offer payload %T", m.Data)
	}
	src := m.From
	self := ep.ID()

	state = make([]byte, 0, offer.Total)
	for int64(len(state)) < offer.Total {
		cm, err := ep.Recv(src, tagStateChunk)
		if err != nil {
			return nil, 0, fmt.Errorf("autopilot: state chunk at %d/%d: %w", len(state), offer.Total, err)
		}
		switch d := cm.Data.(type) {
		case []uint8:
			// In-process transports deliver the sender's slice view.
			state = append(state, d...)
		case *transport.RawPayload:
			// Wire transports deliver the pooled frame lazily; take the
			// byte view, copy out, and release the buffer.
			view, ok := transport.RawPayloadView[uint8](d)
			if !ok {
				d.Release()
				return nil, 0, fmt.Errorf("autopilot: state chunk carries %d non-byte elements", d.Elems())
			}
			state = append(state, view...)
			d.Release()
		default:
			return nil, 0, fmt.Errorf("autopilot: unexpected chunk payload %T", cm.Data)
		}
		transport.Hit(self, transport.PointStateRecv)
	}

	crc := crc32.ChecksumIEEE(state)
	ack := StateAck{OK: int64(len(state)) == offer.Total && crc == offer.CRC, CRC: crc}
	transport.Hit(self, transport.PointStateAck)
	if err := ep.Send(src, tagStateAck, ack, 16); err != nil {
		return nil, 0, fmt.Errorf("autopilot: state ack to %d: %w", src, err)
	}
	if !ack.OK {
		return nil, 0, fmt.Errorf("autopilot: state stream corrupt: got %d bytes crc %08x, offered %d crc %08x",
			len(state), crc, offer.Total, offer.CRC)
	}
	return state, offer.Step, nil
}
