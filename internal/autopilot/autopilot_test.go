package autopilot

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/transport"
)

func procs(ids ...int) []transport.ProcID {
	out := make([]transport.ProcID, len(ids))
	for i, id := range ids {
		out[i] = transport.ProcID(id)
	}
	return out
}

// TestSwapInOnDeath: a member disappearing between observations yields a
// swap-in decision admitting exactly one spare; after Admitted the
// controller holds steady and the spare has left the pool.
func TestSwapInOnDeath(t *testing.T) {
	c := New(Config{})
	c.ObserveMembers(0, procs(1, 2, 3, 4))
	c.ObservePool(procs(10, 11))

	if d := c.Decide(1, 0); d.Kind != KindHold {
		t.Fatalf("healthy world decided %v", d.Kind)
	}

	c.ObserveMembers(2, procs(1, 2, 4)) // 3 died
	d := c.Decide(3, 1)
	if d.Kind != KindSwapIn || len(d.Admit) != 1 || d.Admit[0] != 10 {
		t.Fatalf("death decided %+v, want swap_in of spare 10", d)
	}
	if d.Target != 4 {
		t.Fatalf("target %d, want 4", d.Target)
	}

	c.Admitted(4, d.Admit)
	if got := c.Pool(); len(got) != 1 || got[0] != 11 {
		t.Fatalf("pool after admit: %v, want [11]", got)
	}
	if d := c.Decide(5, 2); d.Kind != KindHold {
		t.Fatalf("post-swap world decided %v", d.Kind)
	}
}

// TestSwapFailureRetriesNextSpare: a spare dying during its swap-in is
// discarded and the next Decide admits the remaining spare for the same
// death.
func TestSwapFailureRetriesNextSpare(t *testing.T) {
	c := New(Config{})
	c.ObserveMembers(0, procs(1, 2, 3))
	c.ObservePool(procs(10, 11))
	c.ObserveMembers(1, procs(1, 2))

	d := c.Decide(2, 0)
	if d.Kind != KindSwapIn || len(d.Admit) != 1 {
		t.Fatalf("decided %+v", d)
	}
	c.SwapFailed(d.Admit[0])

	d = c.Decide(3, 1)
	if d.Kind != KindSwapIn || len(d.Admit) != 1 || d.Admit[0] != 11 {
		t.Fatalf("retry decided %+v, want swap_in of spare 11", d)
	}
	c.Admitted(4, d.Admit)
	if len(c.Pool()) != 0 {
		t.Fatalf("pool not drained: %v", c.Pool())
	}
}

// TestScheduleScaling: schedule entries fire once each at their step,
// moving the target and admitting spares when available; scale-down
// just lowers the target.
func TestScheduleScaling(t *testing.T) {
	sched, err := ParseSchedule("5:+2, 9:-1")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{Schedule: sched})
	c.ObserveMembers(0, procs(1, 2))
	c.ObservePool(procs(10, 11, 12))

	if d := c.Decide(1, 4); d.Kind != KindHold {
		t.Fatalf("pre-schedule decided %v", d.Kind)
	}
	d := c.Decide(2, 5)
	if d.Kind != KindScaleUp || len(d.Admit) != 2 || d.Target != 4 {
		t.Fatalf("step 5 decided %+v, want scale_up admitting 2 toward target 4", d)
	}
	c.Admitted(3, d.Admit)
	if d := c.Decide(4, 6); d.Kind != KindHold {
		t.Fatalf("schedule refired: %+v", d)
	}

	d = c.Decide(5, 9)
	if d.Kind != KindScaleDown || len(d.Admit) != 0 || d.Target != 3 {
		t.Fatalf("step 9 decided %+v, want scale_down to target 3", d)
	}
}

// TestLoadSignal: load above the high-water mark scales up by one,
// below the low-water mark scales down by one.
func TestLoadSignal(t *testing.T) {
	load := 0.5
	c := New(Config{Load: func() float64 { return load }, LoadHigh: 0.9, LoadLow: 0.1})
	c.ObserveMembers(0, procs(1, 2, 3))
	c.ObservePool(procs(10))

	if d := c.Decide(1, 0); d.Kind != KindHold {
		t.Fatalf("mid load decided %v", d.Kind)
	}
	load = 0.95
	d := c.Decide(2, 1)
	if d.Kind != KindScaleUp || len(d.Admit) != 1 || d.Target != 4 {
		t.Fatalf("high load decided %+v", d)
	}
	c.Admitted(3, d.Admit)
	load = 0.05
	if d := c.Decide(4, 2); d.Kind != KindScaleDown || d.Target != 3 {
		t.Fatalf("low load decided %+v", d)
	}
}

// TestParseScheduleRejectsGarbage covers the flag-parse error paths.
func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"5", "x:+1", "5:y", "5:0"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
	if s, err := ParseSchedule("  "); err != nil || s != nil {
		t.Errorf("blank schedule: %v %v", s, err)
	}
	s, err := ParseSchedule("9:-1,5:+2")
	if err != nil || len(s) != 2 || s[0].Step != 5 {
		t.Errorf("schedule not sorted: %+v %v", s, err)
	}
}

// TestDecisionTrace: non-hold decisions land in the trace journal as
// "autopilot" records carrying kind, admit count, and target.
func TestDecisionTrace(t *testing.T) {
	var buf strings.Builder
	rec := trace.New(&buf)
	c := New(Config{Trace: rec, Proc: 9})
	c.ObserveMembers(0, procs(1, 2))
	c.ObservePool(procs(10))
	c.ObserveMembers(1, procs(1))
	c.Decide(2, 7)
	out := buf.String()
	for _, want := range []string{`"kind":"autopilot"`, `"decision":"swap_in"`, `"seq":7`, `"proc":9`} {
		if !strings.Contains(out, want) {
			t.Errorf("journal %s missing %s", out, want)
		}
	}
}

// TestKindStrings pins the metric label vocabulary.
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{KindHold: "hold", KindSwapIn: "swap_in", KindScaleUp: "scale_up", KindScaleDown: "scale_down"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind: %q", Kind(99).String())
	}
}
