package autopilot

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

func newXferCluster() *simnet.Cluster {
	return simnet.New(simnet.Config{
		Nodes:              1,
		ProcsPerNode:       2,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         5,
	})
}

// TestStateStreamByteIdentical is the integrity half of the chunked
// state-stream property: for randomized state sizes and chunk
// boundaries (including chunk > state, chunk = 1, and sizes straddling
// chunk multiples), the receiver reassembles a byte-identical copy and
// the offer's step survives the round trip. The limiter runs on a
// virtual clock, so the capped trials spend zero wall time sleeping.
func TestStateStreamByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		// Sizes stay modest and chunks no smaller than size/256 so a
		// trial is at most a few hundred simnet messages; the dedicated
		// edge trials below cover degenerate chunkings.
		size := 1 + rng.Intn(256<<10)
		chunk := 1 + size/256 + rng.Intn(size+1024) // sometimes > size
		capped := trial%2 == 0

		state := make([]byte, size)
		rng.Read(state)

		c := newXferCluster()
		procs := c.Procs()
		sender, receiver := c.Endpoint(procs[0]), c.Endpoint(procs[1])

		opts := XferOptions{ChunkBytes: chunk, Step: int64(trial)}
		if capped {
			clk := &vtime.Clock{}
			opts.Limiter = NewLimiterFunc(64*1024, 16*1024, clk.Now, clk.Advance)
		}

		var wg sync.WaitGroup
		var sendErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			sendErr = SendState(sender, receiver.ID(), state, opts)
		}()
		got, step, err := RecvState(receiver)
		wg.Wait()
		if err != nil || sendErr != nil {
			t.Fatalf("trial %d (size=%d chunk=%d): recv err=%v send err=%v", trial, size, chunk, err, sendErr)
		}
		if step != int64(trial) {
			t.Fatalf("trial %d: step %d survived as %d", trial, trial, step)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("trial %d (size=%d chunk=%d): received state differs from source", trial, size, chunk)
		}
	}
}

// TestStateStreamDegenerateChunks pins the boundary chunkings the
// randomized trials keep cheap: one-byte chunks, chunk exactly the
// state size, chunk one below and one above, and a one-byte state.
func TestStateStreamDegenerateChunks(t *testing.T) {
	state := make([]byte, 257)
	rand.New(rand.NewSource(3)).Read(state)
	for _, chunk := range []int{1, len(state) - 1, len(state), len(state) + 1} {
		c := newXferCluster()
		procs := c.Procs()
		sender, receiver := c.Endpoint(procs[0]), c.Endpoint(procs[1])
		var wg sync.WaitGroup
		var sendErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			sendErr = SendState(sender, receiver.ID(), state, XferOptions{ChunkBytes: chunk})
		}()
		got, _, err := RecvState(receiver)
		wg.Wait()
		if err != nil || sendErr != nil {
			t.Fatalf("chunk=%d: recv err=%v send err=%v", chunk, err, sendErr)
		}
		if !bytes.Equal(got, state) {
			t.Fatalf("chunk=%d: received state differs from source", chunk)
		}
	}
}

// TestStateStreamSenderSeesReceiverDeath: killing the receiver
// mid-stream must surface as an error at the sender (either on a chunk
// send or on the ack wait), never a hang — that error is what converts
// a doomed swap-in into a recorded swap failure.
func TestStateStreamSenderSeesReceiverDeath(t *testing.T) {
	c := newXferCluster()
	procs := c.Procs()
	sender, receiver := c.Endpoint(procs[0]), c.Endpoint(procs[1])

	state := make([]byte, 1<<20)
	done := make(chan error, 1)
	go func() {
		done <- SendState(sender, receiver.ID(), state, XferOptions{ChunkBytes: 4 << 10})
	}()
	// Receive the offer and a few chunks, then die mid-stream.
	if _, err := receiver.Recv(transport.AnySource, tagStateOffer); err != nil {
		t.Fatalf("offer: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := receiver.Recv(sender.ID(), tagStateChunk); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	c.Kill(receiver.ID())
	if err := <-done; err == nil {
		t.Fatal("sender completed against a dead receiver")
	}
}

// TestStateStreamCorruptionRejected: a stream whose bytes do not match
// the offered checksum is refused by the receiver and the sender sees a
// rejected ack.
func TestStateStreamCorruptionRejected(t *testing.T) {
	c := newXferCluster()
	procs := c.Procs()
	sender, receiver := c.Endpoint(procs[0]), c.Endpoint(procs[1])

	state := []byte("the model weights at step 12")
	var wg sync.WaitGroup
	var sendErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Hand-roll a sender that lies: offer advertises state's CRC but
		// the chunk carries different bytes.
		offer := StateOffer{Total: int64(len(state)), ChunkBytes: len(state), CRC: 0xdeadbeef, Step: 1}
		if err := sender.Send(receiver.ID(), tagStateOffer, offer, 32); err != nil {
			sendErr = err
			return
		}
		if err := sender.Send(receiver.ID(), tagStateChunk, state, int64(len(state))); err != nil {
			sendErr = err
			return
		}
		m, err := sender.Recv(receiver.ID(), tagStateAck)
		if err != nil {
			sendErr = err
			return
		}
		if ack := m.Data.(StateAck); ack.OK {
			t.Error("receiver acked a corrupt stream")
		}
	}()
	_, _, err := RecvState(receiver)
	wg.Wait()
	if sendErr != nil {
		t.Fatalf("sender: %v", sendErr)
	}
	if err == nil {
		t.Fatal("RecvState accepted a checksum mismatch")
	}
}
