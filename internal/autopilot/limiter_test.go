package autopilot

import (
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// vtimeLimiter builds a limiter over a virtual clock: sleep advances the
// clock immediately, so Take never blocks in real time and the measured
// transfer duration is exact.
func vtimeLimiter(rate, burst float64) (*Limiter, *vtime.Clock) {
	clk := &vtime.Clock{}
	lim := NewLimiterFunc(rate, burst, clk.Now, clk.Advance)
	return lim, clk
}

// TestLimiterRespectsRate is the rate half of the bandwidth-cap
// property: for randomized rates, bursts, and chunkings, the virtual
// time a capped stream takes equals (total - burst) / rate within
// tolerance — the bucket's initial credit goes out instantly and
// everything after is paced at exactly the cap.
func TestLimiterRespectsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rate := float64(1+rng.Intn(1000)) * 1024 // 1 KiB/s .. 1 MiB/s
		burst := float64(1+rng.Intn(64)) * 1024
		total := (64 + rng.Intn(4096)) * 1024
		chunk := 1 + rng.Intn(total)

		lim, clk := vtimeLimiter(rate, burst)
		for off := 0; off < total; off += chunk {
			n := chunk
			if off+n > total {
				n = total - off
			}
			lim.Take(n)
		}

		want := (float64(total) - burst) / rate
		if want < 0 {
			want = 0
		}
		got := clk.Now()
		// Chunk granularity can leave up to one chunk of credit unspent
		// at the end, so the elapsed time may undershoot by chunk/rate.
		tol := float64(chunk)/rate + 1e-9
		if got > want+tol || got < want-tol {
			t.Fatalf("trial %d: rate=%g burst=%g total=%d chunk=%d: elapsed %g, want %g±%g",
				trial, rate, burst, total, chunk, got, want, tol)
		}
	}
}

// TestLimiterBurstAtLineRate: a transfer no larger than the burst spends
// no virtual time at all.
func TestLimiterBurstAtLineRate(t *testing.T) {
	lim, clk := vtimeLimiter(1024, 64*1024)
	lim.Take(64 * 1024)
	if clk.Now() != 0 {
		t.Fatalf("burst-sized take advanced the clock by %g", clk.Now())
	}
	// The next byte must pay full price.
	lim.Take(1024)
	if got := clk.Now(); got < 0.99 || got > 1.01 {
		t.Fatalf("post-burst take of one second of credit took %g virtual seconds", got)
	}
}

// TestLimiterOversizeRequest: a single Take larger than the burst must
// not deadlock — the bucket temporarily stretches to the request size.
func TestLimiterOversizeRequest(t *testing.T) {
	lim, clk := vtimeLimiter(1000, 10)
	lim.Take(5000)
	if got := clk.Now(); got < 4.9 || got > 5.1 {
		t.Fatalf("oversize take of 5000B at 1000B/s burst 10 took %g virtual seconds", got)
	}
}

// TestLimiterUnlimited: nil limiters and non-positive rates never block
// and never touch a clock.
func TestLimiterUnlimited(t *testing.T) {
	var nilLim *Limiter
	nilLim.Take(1 << 30)
	if nilLim.Rate() != 0 {
		t.Fatal("nil limiter reports a rate")
	}
	lim, clk := vtimeLimiter(0, 0)
	lim.Take(1 << 30)
	if clk.Now() != 0 {
		t.Fatal("unlimited limiter advanced the clock")
	}
}
