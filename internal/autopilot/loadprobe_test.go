package autopilot

import (
	"testing"

	"repro/internal/obs"
)

// TestLoadFromObsDrivesDecide runs Decide's load branch against a real
// registry: a gauge another subsystem publishes moves the target up and
// down, and before the metric exists the probe is decision-neutral.
func TestLoadFromObsDrivesDecide(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{
		Load:     LoadFromObs(reg, "train_step_seconds"),
		LoadHigh: 0.9,
		LoadLow:  0.1,
	})
	c.ObserveMembers(0, procs(1, 2, 3))

	// The metric is not registered yet: NaN reads must hold, not scale.
	if d := c.Decide(1, 0); d.Kind != KindHold {
		t.Fatalf("unregistered metric: Decide = %v, want hold", d.Kind)
	}

	g := reg.Gauge("train_step_seconds", "per-step wall seconds")

	g.Set(2) // above LoadHigh
	if d := c.Decide(2, 1); d.Kind != KindScaleUp || d.Target != 4 {
		t.Fatalf("high load: Decide = %v target %d, want scale-up to 4", d.Kind, d.Target)
	}

	g.Set(0) // below LoadLow
	if d := c.Decide(3, 2); d.Kind != KindScaleDown || d.Target != 3 {
		t.Fatalf("low load: Decide = %v target %d, want scale-down to 3", d.Kind, d.Target)
	}
}

// TestLoadFromObsHistogramMean pins the histogram path: the probe reads
// the mean, so one slow outlier in an otherwise fast distribution does
// not trip the high-water mark.
func TestLoadFromObsHistogramMean(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("step_seconds", "per-step latency", obs.SecondsBuckets())
	probe := LoadFromObs(reg, "step_seconds")
	for i := 0; i < 9; i++ {
		h.Observe(0.1)
	}
	h.Observe(1.0) // mean 0.19
	if v := probe(); v < 0.18 || v > 0.20 {
		t.Fatalf("probe() = %v, want the mean ~0.19", v)
	}
}
