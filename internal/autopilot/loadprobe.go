package autopilot

import (
	"math"

	"repro/internal/obs"
)

// LoadFromObs builds a Config.Load producer that reads the named
// metric from reg at every Decide — counters and gauges by level,
// histograms by mean (see obs.Registry.Value). A nil reg means the
// process-wide obs.Default() registry.
//
// A metric that does not exist (yet) reads as NaN, which is
// deliberately decision-neutral: NaN compares false against both
// LoadHigh and LoadLow, so Decide holds until the instrumented package
// actually publishes. This is what lets a daemon wire -load-metric at
// startup, before the first step has observed anything.
func LoadFromObs(reg *obs.Registry, metric string, labels ...obs.Label) func() float64 {
	if reg == nil {
		reg = obs.Default()
	}
	return func() float64 {
		v, ok := reg.Value(metric, labels...)
		if !ok {
			return math.NaN()
		}
		return v
	}
}
