// Package dataplane measures the TCP data plane — wire codec and
// loopback allreduce — with testing.Benchmark and renders the results as
// a JSON report (BENCH_dataplane.json at the repo root). Because both
// the gob envelope and the plain ring remain selectable, the pre-PR
// baseline (gob codec, unpipelined ring) stays measurable forever: every
// regeneration of the report re-derives the before/after comparison on
// the current host instead of trusting stale committed numbers.
package dataplane

import (
	"encoding/json"
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/tcpnet"
)

// CodecResult is one (payload shape, codec) cell of the codec comparison.
type CodecResult struct {
	Payload     string  `json:"payload"`       // e.g. "float32-256k"
	Codec       string  `json:"codec"`         // "raw" or "gob"
	NsPerOp     float64 `json:"ns_per_op"`     // encode + decode round trip
	AllocsPerOp int64   `json:"allocs_per_op"` //
	MBPerSec    float64 `json:"mb_per_sec"`    // wire bytes through the round trip
	WireBytes   int64   `json:"wire_bytes"`    // encoded payload size
}

// AllreduceResult is one (tensor size, algorithm, codec) cell of the
// loopback TCP allreduce comparison.
type AllreduceResult struct {
	TensorBytes int64   `json:"tensor_bytes"`
	Algo        string  `json:"algo"`  // "ring", "pipelined", or "tuned"
	Codec       string  `json:"codec"` // "raw", "gob", or "fp16"
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"` // tensor bytes reduced per second
	// WireBytes is the measured per-rank wire traffic of one allreduce
	// (tcpnet tx counter delta over the timed loop), so compression rows
	// carry their byte reduction, not just their latency.
	WireBytes int64 `json:"wire_bytes,omitempty"`
}

// Report is the full BENCH_dataplane.json document.
type Report struct {
	// Baseline names the pre-PR configuration the other rows are read
	// against: the gob envelope codec and the unpipelined ring.
	Baseline     string            `json:"baseline"`
	World        int               `json:"world"`
	Codec        []CodecResult     `json:"codec"`
	TCPAllreduce []AllreduceResult `json:"tcp_allreduce"`
}

// Config sizes the collection; the zero value is replaced by Default().
type Config struct {
	// World is the loopback worker count for the allreduce rows.
	World int
	// CodecElems are the []float32 lengths for the codec rows.
	CodecElems []int
	// TensorElems are the []float32 lengths for the allreduce rows.
	TensorElems []int
	// Quick caps every cell at a handful of iterations — numbers become
	// noisy but collection finishes in seconds (for smoke tests).
	Quick bool
	// Benchtime, if non-empty, sets the per-cell measurement goal in
	// -test.benchtime syntax ("3x", "200ms"). CI's bench gate uses a
	// fixed iteration count so PR runners finish in seconds; Quick wins
	// if both are set.
	Benchtime string
}

// Default is the configuration benchtab -dataplane uses: the codec at
// the acceptance-bar size (256k float32) plus a small size, and the
// allreduce at 256 KiB (the pipelined-floor regime, where chunking must
// degrade to the plain ring), 1 MiB, and 16 MiB with four workers.
func Default() Config {
	return Config{
		World:       4,
		CodecElems:  []int{1 << 10, 256 << 10},
		TensorElems: []int{1 << 16, 1 << 18, 1 << 22},
	}
}

// allreduceCell names one allreduce row: the schedule and wire codec it
// runs, and the labels it reports under. The gob rows keep the pre-PR
// envelope measurable; "tuned" is AlgoAuto routed through the
// self-tuning selector (it runs last so the explicit rows' observations
// have already seeded the model, as they would in a long-lived daemon).
type allreduceCell struct {
	algoLabel  string
	codecLabel string
	algo       mpi.AllreduceAlgo
	raw        bool
	codec      mpi.WireCodec
}

func allreduceCells() []allreduceCell {
	return []allreduceCell{
		{"ring", "gob", mpi.AlgoRing, false, mpi.CodecRaw},
		{"pipelined", "gob", mpi.AlgoPipelinedRing, false, mpi.CodecRaw},
		{"ring", "raw", mpi.AlgoRing, true, mpi.CodecRaw},
		{"pipelined", "raw", mpi.AlgoPipelinedRing, true, mpi.CodecRaw},
		{"pipelined", "fp16", mpi.AlgoPipelinedRing, true, mpi.CodecFP16},
		{"tuned", "raw", mpi.AlgoAuto, true, mpi.CodecRaw},
	}
}

// Collect runs every cell and assembles the report.
func Collect(cfg Config) (*Report, error) {
	def := Default()
	if cfg.World == 0 {
		cfg.World = def.World
	}
	if len(cfg.CodecElems) == 0 {
		cfg.CodecElems = def.CodecElems
	}
	if len(cfg.TensorElems) == 0 {
		cfg.TensorElems = def.TensorElems
	}
	goal := cfg.Benchtime
	if cfg.Quick {
		goal = "2x"
	}
	defer setBenchtime(goal)()
	rep := &Report{
		Baseline: "codec=gob algo=ring (pre-PR data plane)",
		World:    cfg.World,
	}
	for _, n := range cfg.CodecElems {
		for _, raw := range []bool{false, true} {
			res, err := benchCodec(n, raw)
			if err != nil {
				return nil, err
			}
			rep.Codec = append(rep.Codec, res)
		}
	}
	for _, n := range cfg.TensorElems {
		for _, cell := range allreduceCells() {
			res, err := benchAllreduce(cfg.World, n, cell)
			if err != nil {
				return nil, err
			}
			rep.TCPAllreduce = append(rep.TCPAllreduce, res)
		}
	}
	return rep, nil
}

// JSON renders the report with stable formatting for committing.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func codecName(raw bool) string {
	if raw {
		return "raw"
	}
	return "gob"
}

func benchCodec(elems int, raw bool) (CodecResult, error) {
	v := make([]float32, elems)
	for i := range v {
		v[i] = float32(i) * 0.5
	}
	enc, err := encodeWith(v, raw)
	if err != nil {
		return CodecResult{}, err
	}
	wire := int64(len(enc))
	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		prev := transport.SetRawCodec(raw)
		defer transport.SetRawCodec(prev)
		b.ReportAllocs()
		b.SetBytes(wire)
		for i := 0; i < b.N; i++ {
			enc, err := transport.EncodePayload(v)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if _, err := transport.DecodePayload(enc); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return CodecResult{}, failure
	}
	ns := float64(r.NsPerOp())
	return CodecResult{
		Payload:     fmt.Sprintf("float32-%dk", elems>>10),
		Codec:       codecName(raw),
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		MBPerSec:    float64(wire) / ns * 1e3, // bytes/ns -> MB/s
		WireBytes:   wire,
	}, nil
}

func encodeWith(v any, raw bool) ([]byte, error) {
	prev := transport.SetRawCodec(raw)
	defer transport.SetRawCodec(prev)
	return transport.EncodePayload(v)
}

// txBytes is tcpnet's process-global tx counter; deltas across a timed
// loop give the wire bytes a row actually moved (per rank, per op).
var txBytes = obs.Default().Counter("tcpnet_tx_bytes_total",
	"Wire bytes written to peers, length prefixes included.")

func benchAllreduce(world, elems int, cell allreduceCell) (AllreduceResult, error) {
	var failure error
	tensorBytes := int64(elems) * 4
	var wirePerOp int64
	r := testing.Benchmark(func(b *testing.B) {
		prev := transport.SetRawCodec(cell.raw)
		defer transport.SetRawCodec(prev)

		cfg := tcpnet.Config{DialRetries: 4, DialBackoff: 20 * time.Millisecond, DialTimeout: time.Second}
		eps := make([]*tcpnet.Endpoint, world)
		peers := make(map[transport.ProcID]string, world)
		procs := make([]transport.ProcID, world)
		for i := 0; i < world; i++ {
			ep, err := tcpnet.Listen("127.0.0.1:0", cfg)
			if err != nil {
				failure = err
				b.FailNow()
			}
			eps[i] = ep
			peers[transport.ProcID(i)] = ep.Addr()
			procs[i] = transport.ProcID(i)
		}
		defer func() {
			for _, ep := range eps {
				ep.Close()
			}
		}()
		for i, ep := range eps {
			ep.Start(transport.ProcID(i), peers)
		}
		comms := make([]*mpi.Comm, world)
		tensors := make([][]float32, world)
		for i, ep := range eps {
			comm, err := mpi.World(mpi.Attach(ep), procs)
			if err != nil {
				failure = err
				b.FailNow()
			}
			comms[i] = comm
			tensors[i] = make([]float32, elems)
			for j := range tensors[i] {
				tensors[i][j] = float32(i + 1)
			}
		}
		b.SetBytes(tensorBytes)
		b.ResetTimer()
		tx0 := txBytes.Value()
		errs := make([]error, world)
		done := make(chan struct{})
		opts := mpi.AllreduceOptions{Algo: cell.algo, Codec: cell.codec}
		for i := 0; i < world; i++ {
			go func(rank int) {
				defer func() { done <- struct{}{} }()
				for it := 0; it < b.N; it++ {
					if err := mpi.AllreduceOpts(comms[rank], tensors[rank], mpi.OpSum, opts); err != nil {
						errs[rank] = err
						return
					}
				}
			}(i)
		}
		for i := 0; i < world; i++ {
			<-done
		}
		b.StopTimer()
		wirePerOp = int64(txBytes.Value()-tx0) / int64(b.N*world)
		for _, err := range errs {
			if err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return AllreduceResult{}, failure
	}
	ns := float64(r.NsPerOp())
	return AllreduceResult{
		TensorBytes: tensorBytes,
		Algo:        cell.algoLabel,
		Codec:       cell.codecLabel,
		NsPerOp:     ns,
		MBPerSec:    float64(tensorBytes) / ns * 1e3,
		WireBytes:   wirePerOp,
	}, nil
}

// setBenchtime overrides the harness's per-benchmark goal (1s by
// default) with goal, in -test.benchtime syntax ("2x", "300ms"); an
// empty goal is a no-op. It returns a restore function. The goal lives
// in the -test.benchtime flag, which testing.Init registers
// (idempotently) in non-test binaries like cmd/benchtab.
func setBenchtime(goal string) func() {
	if goal == "" {
		return func() {}
	}
	testing.Init()
	fl := flag.Lookup("test.benchtime")
	if fl == nil {
		return func() {}
	}
	prev := fl.Value.String()
	if err := flag.Set("test.benchtime", goal); err != nil {
		return func() {}
	}
	return func() { flag.Set("test.benchtime", prev) }
}
