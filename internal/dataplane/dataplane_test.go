package dataplane

import (
	"encoding/json"
	"testing"
)

// A quick collection must produce every cell of the comparison matrix
// and a JSON document that round-trips. (Numbers are not asserted: this
// is a smoke test, the committed BENCH_dataplane.json carries the real
// measurements.)
func TestCollectQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up loopback TCP worlds")
	}
	cfg := Config{
		World:       2,
		CodecElems:  []int{1 << 8},
		TensorElems: []int{1 << 10},
		Quick:       true,
	}
	rep, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Codec) != 2 { // raw + gob for one size
		t.Fatalf("codec cells = %d, want 2", len(rep.Codec))
	}
	if want := len(allreduceCells()); len(rep.TCPAllreduce) != want {
		t.Fatalf("allreduce cells = %d, want %d", len(rep.TCPAllreduce), want)
	}
	seen := map[string]bool{}
	for _, a := range rep.TCPAllreduce {
		seen[a.Algo+"/"+a.Codec] = true
	}
	for _, key := range []string{"ring/raw", "pipelined/raw", "pipelined/fp16", "tuned/raw"} {
		if !seen[key] {
			t.Fatalf("missing allreduce cell %s (have %v)", key, seen)
		}
	}
	for _, c := range rep.Codec {
		if c.NsPerOp <= 0 || c.WireBytes <= 0 {
			t.Fatalf("degenerate codec cell: %+v", c)
		}
	}
	for _, a := range rep.TCPAllreduce {
		if a.NsPerOp <= 0 {
			t.Fatalf("degenerate allreduce cell: %+v", a)
		}
	}
	blob, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.World != cfg.World || len(back.Codec) != len(rep.Codec) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
