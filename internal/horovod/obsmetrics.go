package horovod

// Coordination-layer metrics: how often the response cache short-circuits
// negotiation, and how full the fusion buffer runs. A fill ratio pinned
// near 1.0 means the fusion threshold is the binding constraint (more,
// smaller groups); a low ratio means gradients fuse into one undersized
// group and the threshold could shrink.

import "repro/internal/obs"

var (
	obsCacheHits = obs.Default().Counter("horovod_response_cache_hits_total",
		"Negotiations skipped because the response signature was cached.")
	obsCacheMisses = obs.Default().Counter("horovod_response_cache_misses_total",
		"Negotiations that ran the coordination allreduce.")
	obsFusionGroups = obs.Default().Counter("horovod_fusion_groups_total",
		"Fusion groups formed across all gradient exchanges.")
	obsFusionFill = obs.Default().Histogram("horovod_fusion_fill_ratio",
		"Fusion-group fill: group bytes over the fusion threshold.",
		obs.RatioBuckets())
)

// observeFusion records one planned fusion group against the configured
// threshold (in elements, matching tensor.PlanFusion's unit).
func observeFusion(groupElems, capElems int) {
	obsFusionGroups.Inc()
	if capElems > 0 {
		obsFusionFill.Observe(float64(groupElems) / float64(capElems))
	}
}
