// Package horovod reimplements the middleware layer the paper integrates
// into: a data-parallel worker with Horovod's characteristic machinery —
// tensor fusion (pack many small gradients into few large collectives),
// response caching (skip per-step tensor negotiation once a request
// signature has been coordinated), and pluggable communication backends.
//
// Two backends mirror the paper's two stacks:
//
//   - MPIBackend over internal/mpi — the ULFM-capable stack,
//   - GlooBackend over internal/gloo — the Elastic Horovod baseline stack,
//
// with optional delegation of bulk gradient movement to the simulated
// NCCL GPU communicator ("we delegated all GPU computation and
// communication tasks to NCCL"), keeping the GPU term identical on both
// sides of the comparison.
package horovod

import (
	"fmt"
	"hash/fnv"

	"repro/internal/gloo"
	"repro/internal/mpi"
	"repro/internal/nccl"
	"repro/internal/tensor"
	"repro/internal/vtime"
)

// Backend abstracts the host-side collective library.
type Backend interface {
	Rank() int
	Size() int
	// Allreduce sums float32 data elementwise across workers.
	Allreduce(data []float32) error
	// AllreduceVirtual runs the allreduce schedule for a virtual payload.
	AllreduceVirtual(bytes int64) error
	// Bcast broadcasts root's data to all workers.
	Bcast(data []float32, root int) error
	// BcastVirtual broadcasts a virtual payload.
	BcastVirtual(bytes int64, root int) error
	// Clock is the caller's virtual clock (for compute-cost accounting).
	Clock() *vtime.Clock
	// Name identifies the backend ("mpi" or "gloo").
	Name() string
}

// --- MPI backend -----------------------------------------------------------

// MPIBackend adapts an mpi.Comm (ULFM-capable) as a Horovod backend.
// Algo selects the allreduce schedule for gradient exchange (the zero
// value keeps the library's automatic pick, which self-tunes on real
// transports); Chunks pins the pipelined split factor and Codec selects
// the gradient wire format — zero values mean size-derived chunking and
// lossless full-width floats.
type MPIBackend struct {
	Comm   *mpi.Comm
	Algo   mpi.AllreduceAlgo
	Chunks int
	Codec  mpi.WireCodec
}

// NewMPIBackend wraps a communicator.
func NewMPIBackend(c *mpi.Comm) *MPIBackend { return &MPIBackend{Comm: c} }

func (b *MPIBackend) Rank() int { return b.Comm.Rank() }
func (b *MPIBackend) Size() int { return b.Comm.Size() }
func (b *MPIBackend) Allreduce(data []float32) error {
	return mpi.AllreduceOpts(b.Comm, data, mpi.OpSum,
		mpi.AllreduceOptions{Algo: b.Algo, Chunks: b.Chunks, Codec: b.Codec})
}
func (b *MPIBackend) AllreduceVirtual(bytes int64) error {
	return mpi.AllreduceVirtual(b.Comm, bytes)
}
func (b *MPIBackend) Bcast(data []float32, root int) error {
	return mpi.Bcast(b.Comm, data, root)
}
func (b *MPIBackend) BcastVirtual(bytes int64, root int) error {
	return mpi.BcastVirtual(b.Comm, bytes, root)
}
func (b *MPIBackend) Clock() *vtime.Clock { return b.Comm.Proc().Endpoint().VClock() }
func (b *MPIBackend) Name() string        { return "mpi" }

// --- Gloo backend ----------------------------------------------------------

// GlooBackend adapts a gloo.Context as a Horovod backend.
type GlooBackend struct{ Ctx *gloo.Context }

// NewGlooBackend wraps a context.
func NewGlooBackend(ctx *gloo.Context) *GlooBackend { return &GlooBackend{Ctx: ctx} }

func (b *GlooBackend) Rank() int                      { return b.Ctx.Rank() }
func (b *GlooBackend) Size() int                      { return b.Ctx.Size() }
func (b *GlooBackend) Allreduce(data []float32) error { return b.Ctx.Allreduce(data) }
func (b *GlooBackend) AllreduceVirtual(bytes int64) error {
	return b.Ctx.AllreduceVirtual(bytes)
}
func (b *GlooBackend) Bcast(data []float32, root int) error { return b.Ctx.Bcast(data, root) }
func (b *GlooBackend) BcastVirtual(bytes int64, root int) error {
	return b.Ctx.BcastVirtual(bytes, root)
}
func (b *GlooBackend) Clock() *vtime.Clock { return b.Ctx.Clock() }
func (b *GlooBackend) Name() string        { return "gloo" }

// --- worker ------------------------------------------------------------

// Config tunes the middleware, mirroring the Horovod environment variables
// the paper sets ("tensor fusion and response caching sizes").
type Config struct {
	// FusionBytes caps each fused buffer (HOROVOD_FUSION_THRESHOLD);
	// 64 MB default as in Horovod.
	FusionBytes int64
	// CacheResponses enables the response cache: per-step tensor
	// negotiation runs once per unique request signature.
	CacheResponses bool
	// GPU, when non-nil, carries bulk gradient bytes on the simulated
	// NCCL communicator while the host backend moves only per-group
	// control messages.
	GPU *nccl.Communicator
}

// DefaultConfig mirrors Horovod defaults.
func DefaultConfig() Config {
	return Config{FusionBytes: 64 << 20, CacheResponses: true}
}

// Worker is one Horovod rank: backend + fusion + response cache.
type Worker struct {
	be    Backend
	cfg   Config
	cache map[uint64]bool
	// negotiationBytes is the control-plane payload per tensor during
	// coordination (name + shape + dtype metadata).
	negotiationBytes int64
}

// NewWorker builds a worker over a backend.
func NewWorker(be Backend, cfg Config) *Worker {
	if cfg.FusionBytes <= 0 {
		cfg.FusionBytes = 64 << 20
	}
	return &Worker{be: be, cfg: cfg, cache: make(map[uint64]bool), negotiationBytes: 48}
}

// Rank and Size expose the backend topology.
func (w *Worker) Rank() int { return w.be.Rank() }
func (w *Worker) Size() int { return w.be.Size() }

// Backend returns the underlying backend (for recovery layers).
func (w *Worker) Backend() Backend { return w.be }

// ResetCache clears the response cache; required after any worker-set
// change, as Horovod does on reset events.
func (w *Worker) ResetCache() { w.cache = make(map[uint64]bool) }

// CacheLen reports the number of cached response signatures.
func (w *Worker) CacheLen() int { return len(w.cache) }

// signature hashes the request (tensor names + sizes + world size).
func (w *Worker) signature(names []string, sizes []int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "ws=%d;", w.be.Size())
	for i, n := range names {
		fmt.Fprintf(h, "%s:%d;", n, sizes[i])
	}
	return h.Sum64()
}

// negotiate models Horovod's tensor coordination round: the workers agree
// on which tensors are ready and how to fuse them. With the response cache
// enabled this happens once per signature.
func (w *Worker) negotiate(sig uint64, tensorCount int) error {
	if w.cfg.CacheResponses && w.cache[sig] {
		obsCacheHits.Inc()
		return nil
	}
	obsCacheMisses.Inc()
	if err := w.be.AllreduceVirtual(w.negotiationBytes * int64(tensorCount)); err != nil {
		return err
	}
	if w.cfg.CacheResponses {
		w.cache[sig] = true
	}
	return nil
}

// AllreduceGrads averages the named gradient tensors across all workers
// in place: negotiation (unless cached), fusion-packed sum-allreduce on
// the host backend, then division by the world size.
func (w *Worker) AllreduceGrads(names []string, grads []tensor.Vector) error {
	if len(names) != len(grads) {
		return fmt.Errorf("horovod: %d names for %d tensors", len(names), len(grads))
	}
	sizes := make([]int, len(grads))
	for i, g := range grads {
		sizes[i] = len(g)
	}
	if err := w.negotiate(w.signature(names, sizes), len(grads)); err != nil {
		return err
	}
	groups := tensor.PlanFusion(sizes, int(w.cfg.FusionBytes/4))
	for _, g := range groups {
		observeFusion(g.Elems, int(w.cfg.FusionBytes/4))
		fused := tensor.Pack(g, grads)
		if err := w.be.Allreduce(fused); err != nil {
			return err
		}
		fused.Scale(1 / float32(w.be.Size()))
		tensor.Unpack(g, fused, grads)
	}
	return nil
}

// AllreduceGradsVirtual runs one optimizer step's gradient exchange for a
// synthetic model given its tensor element schedule: negotiation, then per
// fusion group either a GPU (NCCL) allreduce plus a host control message,
// or a host virtual allreduce when no GPU communicator is attached.
func (w *Worker) AllreduceGradsVirtual(sig string, sizes []int) error {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d", sig, w.be.Size(), len(sizes))
	if err := w.negotiate(h.Sum64(), len(sizes)); err != nil {
		return err
	}
	groups := tensor.PlanFusion(sizes, int(w.cfg.FusionBytes/4))
	for _, g := range groups {
		observeFusion(g.Elems, int(w.cfg.FusionBytes/4))
		bytes := int64(g.Elems) * 4
		if w.cfg.GPU != nil {
			// Host backend carries the per-group launch coordination;
			// NCCL moves the gradient bytes.
			if err := w.be.AllreduceVirtual(64); err != nil {
				return err
			}
			if err := w.cfg.GPU.Allreduce(w.be.Clock(), bytes); err != nil {
				return err
			}
			continue
		}
		if err := w.be.AllreduceVirtual(bytes); err != nil {
			return err
		}
	}
	return nil
}

// BroadcastState broadcasts the flat training state from root, used to
// synchronize newcomers and re-synchronize after recovery.
func (w *Worker) BroadcastState(state tensor.Vector, root int) error {
	return w.be.Bcast(state, root)
}

// BroadcastStateVirtual broadcasts a virtual state payload from root.
func (w *Worker) BroadcastStateVirtual(bytes int64, root int) error {
	if w.cfg.GPU != nil {
		if err := w.be.BcastVirtual(64, root); err != nil {
			return err
		}
		return w.cfg.GPU.Bcast(w.be.Clock(), bytes)
	}
	return w.be.BcastVirtual(bytes, root)
}
