package horovod

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/gloo"
	"repro/internal/kvstore"
	"repro/internal/mpi"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func testCluster(nodes, ppn int) *simnet.Cluster {
	return simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      1e-3,
		SpawnDelay:         5,
	})
}

// runMPI runs body under an MPI-backed worker at every rank.
func runMPI(t *testing.T, nodes, ppn int, cfg Config, body func(w *Worker) error) {
	t.Helper()
	c := testCluster(nodes, ppn)
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		return body(NewWorker(NewMPIBackend(comm), cfg))
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

// runGloo runs body under a Gloo-backed worker at every rank.
func runGloo(t *testing.T, nodes, ppn int, cfg Config, body func(w *Worker) error) {
	t.Helper()
	c := testCluster(nodes, ppn)
	kv := kvstore.New(kvstore.DefaultConfig())
	procs := c.Procs()
	errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
		ctx, err := gloo.Connect(ep, kv, gloo.DefaultConfig(), 1, rank, len(procs))
		if err != nil {
			return err
		}
		defer ctx.Close()
		return body(NewWorker(NewGlooBackend(ctx), cfg))
	})
	if err := simnet.FirstError(errs); err != nil {
		t.Fatal(err)
	}
}

func gradsFor(rank int) ([]string, []tensor.Vector) {
	names := []string{"w0", "b0", "w1"}
	grads := []tensor.Vector{
		{float32(rank), float32(rank)},
		{1},
		{float32(rank * 10), 2, 3},
	}
	return names, grads
}

func checkAveraged(w *Worker, grads []tensor.Vector) error {
	n := float32(w.Size())
	// Mean over ranks r of r = (n-1)/2; of r*10 = 10*(n-1)/2.
	wantR := (n - 1) / 2
	if grads[0][0] != wantR || grads[0][1] != wantR {
		return fmt.Errorf("w0 = %v, want %v", grads[0], wantR)
	}
	if grads[1][0] != 1 {
		return fmt.Errorf("b0 = %v, want 1", grads[1])
	}
	if grads[2][0] != 10*wantR || grads[2][1] != 2 || grads[2][2] != 3 {
		return fmt.Errorf("w1 = %v", grads[2])
	}
	return nil
}

func TestAllreduceGradsAveragesMPI(t *testing.T) {
	runMPI(t, 2, 2, DefaultConfig(), func(w *Worker) error {
		names, grads := gradsFor(w.Rank())
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		return checkAveraged(w, grads)
	})
}

func TestAllreduceGradsAveragesGloo(t *testing.T) {
	runGloo(t, 2, 2, DefaultConfig(), func(w *Worker) error {
		names, grads := gradsFor(w.Rank())
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		return checkAveraged(w, grads)
	})
}

func TestFusionSplitsLargeRequests(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FusionBytes = 16 // 4 elements per group
	runMPI(t, 1, 2, cfg, func(w *Worker) error {
		names := []string{"a", "b", "c"}
		grads := []tensor.Vector{make(tensor.Vector, 3), make(tensor.Vector, 3), make(tensor.Vector, 3)}
		for _, g := range grads {
			for i := range g {
				g[i] = 2
			}
		}
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		for _, g := range grads {
			for _, v := range g {
				if v != 2 { // (2+2)/2
					return fmt.Errorf("fused averaging wrong: %v", g)
				}
			}
		}
		return nil
	})
}

func TestResponseCacheSkipsNegotiation(t *testing.T) {
	runMPI(t, 1, 2, DefaultConfig(), func(w *Worker) error {
		names, grads := gradsFor(w.Rank())
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		if w.CacheLen() != 1 {
			return fmt.Errorf("cache len = %d after first step", w.CacheLen())
		}
		// Same signature again: still one entry.
		_, grads2 := gradsFor(w.Rank())
		if err := w.AllreduceGrads(names, grads2); err != nil {
			return err
		}
		if w.CacheLen() != 1 {
			return fmt.Errorf("cache len = %d after repeat", w.CacheLen())
		}
		// New signature: second entry.
		if err := w.AllreduceGrads([]string{"z"}, []tensor.Vector{{1}}); err != nil {
			return err
		}
		if w.CacheLen() != 2 {
			return fmt.Errorf("cache len = %d after new tensor set", w.CacheLen())
		}
		w.ResetCache()
		if w.CacheLen() != 0 {
			return fmt.Errorf("cache not cleared")
		}
		return nil
	})
}

func TestCachedStepsAreCheaper(t *testing.T) {
	var mu sync.Mutex
	var firstDur, secondDur float64
	runMPI(t, 1, 4, DefaultConfig(), func(w *Worker) error {
		names, grads := gradsFor(w.Rank())
		t0 := w.Backend().Clock().Now()
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		t1 := w.Backend().Clock().Now()
		if err := w.AllreduceGrads(names, grads); err != nil {
			return err
		}
		t2 := w.Backend().Clock().Now()
		if w.Rank() == 0 {
			mu.Lock()
			firstDur, secondDur = t1-t0, t2-t1
			mu.Unlock()
		}
		return nil
	})
	if !(secondDur < firstDur) {
		t.Fatalf("cached step (%v) should be cheaper than negotiated step (%v)", secondDur, firstDur)
	}
}

func TestVirtualStepWithGPU(t *testing.T) {
	var mu sync.Mutex
	times := map[bool]float64{}
	for _, withGPU := range []bool{false, true} {
		c := testCluster(4, 6)
		procs := c.Procs()
		errs := simnet.RunAll(c, procs, func(rank int, ep *simnet.Endpoint) error {
			p := mpi.Attach(ep)
			comm, err := mpi.World(p, procs)
			if err != nil {
				return err
			}
			cfg := DefaultConfig() // per-rank copy: cfg.GPU is rank-local
			if withGPU {
				cfg.GPU = nccl.Init(&ep.Clock, nccl.DefaultConfig(), len(procs))
			}
			w := NewWorker(NewMPIBackend(comm), cfg)
			sizes := []int{25_600_000} // ResNet-sized single tensor
			if err := w.AllreduceGradsVirtual("resnet", sizes); err != nil {
				return err
			}
			if rank == 0 {
				mu.Lock()
				times[withGPU] = ep.Clock.Now()
				mu.Unlock()
			}
			return nil
		})
		if err := simnet.FirstError(errs); err != nil {
			t.Fatal(err)
		}
	}
	if times[true] <= 0 || times[false] <= 0 {
		t.Fatal("missing timings")
	}
	// The GPU path adds the NCCL communicator init (hundreds of ms) on
	// top of a comparable wire time, so it must be strictly slower than
	// the bare host path for a single step, but by less than init + a few
	// exchange times.
	if times[true] <= times[false] {
		t.Fatalf("GPU path should include NCCL init: gpu=%v host=%v", times[true], times[false])
	}
	if times[true] > times[false]+2.0 {
		t.Fatalf("GPU path cost implausible: gpu=%v host=%v", times[true], times[false])
	}
}

func TestBroadcastState(t *testing.T) {
	runMPI(t, 1, 3, DefaultConfig(), func(w *Worker) error {
		state := make(tensor.Vector, 100)
		if w.Rank() == 0 {
			state.FillRandom(7, 1)
		}
		if err := w.BroadcastState(state, 0); err != nil {
			return err
		}
		want := make(tensor.Vector, 100)
		want.FillRandom(7, 1)
		if state.Hash() != want.Hash() {
			return fmt.Errorf("rank %d: state mismatch after broadcast", w.Rank())
		}
		return nil
	})
}

func TestBroadcastStateVirtual(t *testing.T) {
	runGloo(t, 1, 3, DefaultConfig(), func(w *Worker) error {
		return w.BroadcastStateVirtual(98<<20, 0)
	})
}

func TestMismatchedNamesRejected(t *testing.T) {
	runMPI(t, 1, 1, DefaultConfig(), func(w *Worker) error {
		if err := w.AllreduceGrads([]string{"a", "b"}, []tensor.Vector{{1}}); err == nil {
			return fmt.Errorf("mismatched names/tensors should error")
		}
		return nil
	})
}

func TestBackendNames(t *testing.T) {
	runMPI(t, 1, 1, DefaultConfig(), func(w *Worker) error {
		if w.Backend().Name() != "mpi" {
			return fmt.Errorf("backend name = %s", w.Backend().Name())
		}
		return nil
	})
	runGloo(t, 1, 1, DefaultConfig(), func(w *Worker) error {
		if w.Backend().Name() != "gloo" {
			return fmt.Errorf("backend name = %s", w.Backend().Name())
		}
		return nil
	})
}
