package horovod

import (
	"fmt"
	"testing"

	"repro/internal/nccl"
	"repro/internal/tensor"
)

func TestGlooBackendBcastAndVirtuals(t *testing.T) {
	runGloo(t, 1, 3, DefaultConfig(), func(w *Worker) error {
		// Real broadcast through the Gloo backend.
		state := make(tensor.Vector, 32)
		if w.Rank() == 0 {
			state.FillRandom(3, 1)
		}
		if err := w.BroadcastState(state, 0); err != nil {
			return err
		}
		want := make(tensor.Vector, 32)
		want.FillRandom(3, 1)
		if state.Hash() != want.Hash() {
			return fmt.Errorf("rank %d: bcast mismatch", w.Rank())
		}
		// Virtual paths on the Gloo backend.
		if err := w.Backend().AllreduceVirtual(1 << 20); err != nil {
			return err
		}
		if err := w.Backend().BcastVirtual(1<<20, 0); err != nil {
			return err
		}
		if w.Backend().Clock() == nil {
			return fmt.Errorf("nil clock")
		}
		return nil
	})
}

func TestGlooBackendVirtualStep(t *testing.T) {
	runGloo(t, 2, 2, DefaultConfig(), func(w *Worker) error {
		return w.AllreduceGradsVirtual("m", []int{1000, 2000, 500})
	})
}

func TestBroadcastStateVirtualWithGPU(t *testing.T) {
	cfg := DefaultConfig()
	runMPI(t, 1, 4, cfg, func(w *Worker) error {
		// Rebuild the worker with a GPU communicator so the virtual state
		// sync takes the NCCL path (small host control + GPU bcast).
		gcfg := cfg
		gcfg.GPU = nccl.Init(w.Backend().Clock(), nccl.DefaultConfig(), w.Size())
		gw := NewWorker(w.Backend(), gcfg)
		return gw.BroadcastStateVirtual(50<<20, 0)
	})
}

func TestNewWorkerDefaultsFusion(t *testing.T) {
	runMPI(t, 1, 1, Config{FusionBytes: -5}, func(w *Worker) error {
		// Invalid fusion size falls back to the 64 MB default; a large
		// request must still work.
		return w.AllreduceGrads([]string{"a"}, []tensor.Vector{make(tensor.Vector, 10)})
	})
}
