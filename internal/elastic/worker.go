package elastic

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/gloo"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/train"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// deathWatch returns a channel closed when any of procs dies, plus a stop
// function releasing the watcher goroutines. It cancels KV waits that
// would otherwise hang when a rendezvous participant dies before arriving.
func deathWatch(cl *simnet.Cluster, procs []simnet.ProcID) (<-chan struct{}, func()) {
	out := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	for _, pid := range procs {
		ep := cl.Endpoint(pid)
		if ep == nil {
			continue
		}
		go func(done <-chan struct{}) {
			select {
			case <-done:
				once.Do(func() { close(out) })
			case <-stop:
			}
		}(ep.Done())
	}
	return out, func() { close(stop) }
}

// recoverable reports whether a round-setup error is a fresh failure the
// driver handles with another reset (vs a harness/usage error).
func recoverable(err error) bool {
	if errors.Is(err, gloo.ErrPoisoned) {
		return true
	}
	if _, ok := simnet.IsPeerFailed(err); ok {
		return true
	}
	return false
}

// runWorker is one worker's full lifecycle across reconfiguration rounds.
// Victims return nil after firing their failure; workers dropped by node
// blacklisting return nil once excluded from an assignment.
func (j *Job) runWorker(ep *simnet.Endpoint, round int, isNew bool) error {
	err := j.workerLoop(ep, round, isNew)
	// A worker killed mid-flight (co-located with a victim on a killed
	// node) unwinds with ErrDead; that is an expected outcome, not a
	// harness failure.
	if errors.Is(err, simnet.ErrDead) || ep.Closed() {
		return nil
	}
	return err
}

func (j *Job) workerLoop(ep *simnet.Endpoint, round int, isNew bool) error {
	cfg := j.cfg
	sched := cfg.Schedule.Clone()
	state, err := train.NewState(cfg.Train)
	if err != nil {
		return err
	}

	var bd *metrics.Breakdown
	trigger := ""
	if isNew {
		// Software initialization of a fresh worker: the simnet spawn
		// already charged scheduler+binary load; the framework (Horovod,
		// training engine, CUDA contexts) loads now.
		bd = metrics.NewBreakdown()
		ep.Compute(cfg.FrameworkInit)
		bd.Add(metrics.PhaseNewWorkerInit, cfg.FrameworkInit+j.cluster.Config().SpawnDelay)
		trigger = "join"
	}

	lastStepDur := 0.05 // recompute estimator, refined after the first step
	failE, failS := -1, -1

	// Failure events address victims by their rank in the initial worker
	// set: reset rounds renumber ranks, and rollback re-traverses event
	// points, so matching against the current rank could kill the wrong
	// worker.
	origRank := -1
	if first := j.assignmentFor(j.cfg.StartRound); first != nil {
		origRank = first.rankOf(ep.ID())
	}

	for {
		transport.Hit(ep.ID(), transport.PointElasticRound)
		asn := j.assignmentFor(round)
		if asn == nil {
			return fmt.Errorf("elastic: missing assignment for round %d", round)
		}
		rank := asn.rankOf(ep.ID())
		if rank < 0 {
			// Dropped by node blacklisting: Elastic Horovod stops every
			// worker on a failed node.
			return nil
		}
		size := len(asn.procs)
		sw := vtime.NewStopwatch(&ep.Clock)

		// A participant can die mid-reset (before publishing its
		// rendezvous key or reaching a barrier); the watch cancels those
		// waits so the driver can plan yet another round, as the real
		// Elastic Horovod does via rendezvous timeouts.
		watch, stopWatch := deathWatch(j.cluster, asn.procs)
		replan := func(stage string, err error) error {
			stopWatch()
			if !recoverable(err) {
				return fmt.Errorf("elastic: round %d %s: %w", round, stage, err)
			}
			j.discover(ep, round+1)
			j.planRecovery(round+1, ep.Clock.Now())
			trigger = "failure"
			if bd == nil {
				bd = metrics.NewBreakdown()
			}
			round++
			return nil
		}

		ctx, err := gloo.ConnectCancel(ep, j.kv, cfg.Gloo, round, rank, size, watch)
		if err != nil {
			if rerr := replan("rendezvous", err); rerr != nil {
				return rerr
			}
			continue
		}
		if bd != nil {
			bd.Add(metrics.PhaseReinitGloo, sw.Lap())
		}

		// Resume rendezvous: local (per-node) then global barriers.
		nodeRanks := int64(0)
		for _, pid := range asn.procs {
			if n, err := j.cluster.NodeOf(pid); err == nil && n == ep.Node() {
				nodeRanks++
			}
		}
		if err := j.barrierCancel(ep, fmt.Sprintf("rdv/%d/node%d", round, ep.Node()), nodeRanks, watch); err != nil {
			ctx.Close()
			if rerr := replan("local rendezvous", err); rerr != nil {
				return rerr
			}
			continue
		}
		if bd != nil {
			bd.Add(metrics.PhaseRendezvousLocal, sw.Lap())
		}
		if err := j.barrierCancel(ep, fmt.Sprintf("rdv/%d/global", round), int64(size), watch); err != nil {
			ctx.Close()
			if rerr := replan("global rendezvous", err); rerr != nil {
				return rerr
			}
			continue
		}
		if bd != nil {
			bd.Add(metrics.PhaseRendezvousGlob, sw.Lap())
		}

		hv := cfg.Horovod
		if cfg.UseGPU {
			hv.GPU = nccl.Init(&ep.Clock, cfg.NCCL, size)
			if bd != nil {
				bd.Add(metrics.PhaseGPUReinit, sw.Lap())
			}
		}
		w := horovod.NewWorker(horovod.NewGlooBackend(ctx), hv)

		// Backward recovery: every survivor rolls back to its last commit
		// (commits are synchronized points, so the contents agree), then
		// rank 0 broadcasts so newcomers obtain the state too.
		if trigger == "failure" {
			if snap, lerr := j.ckpt.Load(int(ep.ID())); lerr == nil {
				if serr := state.SetFlat(snap.Model); serr != nil {
					return serr
				}
			}
		}
		if err := j.syncState(w, state, ep); err != nil {
			ctx.Close()
			if rerr := replan("state sync", err); rerr != nil {
				return rerr
			}
			continue
		}
		stopWatch()
		if bd != nil {
			bd.Add(metrics.PhaseStateSync, sw.Lap())
		}
		if trigger == "failure" && failE >= 0 {
			lost := stepsBetween(state.Epoch, state.Step, failE, failS, state.StepsPerEpoch(size))
			bd.Add(metrics.PhaseRecompute, float64(lost)*lastStepDur)
		}
		if bd != nil {
			j.reportRecovery(round, bd, isNew, trigger)
			bd = nil
		}
		if isNew {
			// Drop schedule events from before the join point.
			for sched.Pending(state.Epoch, state.Step) != nil {
			}
			isNew = false
		}
		// Elastic LR policy: rescale the target LR for the new world size.
		state.LRPol.Resize(size)

		// ---- training loop -------------------------------------------
		recovered := false
		for state.Epoch < cfg.Train.Epochs && !recovered {
			if state.Step == 0 {
				j.commit(ep, state)
			}
			steps := state.StepsPerEpoch(size)
			var epochLoss float64
			lossBatches := 0
			for state.Step < steps && !recovered {
				if ev := sched.Pending(state.Epoch, state.Step); ev != nil {
					switch ev.Type {
					case failure.Grow:
						// Graceful reset: driver discovered new hosts.
						bd = metrics.NewBreakdown()
						rsw := vtime.NewStopwatch(&ep.Clock)
						ctx.Close()
						ep.Compute(cfg.ShutdownCost)
						bd.Add(metrics.PhaseShutdown, rsw.Lap())
						j.discover(ep, round+1)
						j.planUpscale(round+1, ev.Add, ep.Clock.Now())
						ep.Compute(cfg.DriverCost)
						bd.Add(metrics.PhaseReinitElastic, rsw.Lap())
						trigger = "upscale"
						failE, failS = -1, -1
						round++
						recovered = true
						continue
					case failure.Fail:
						if origRank >= 0 && ev.Rank == origRank {
							failure.Fire(j.cluster, ep.ID(), ev.Kind)
							return nil
						}
						// Not the victim: the fault will surface through
						// the collective below.
					}
				}
				stepSW := vtime.NewStopwatch(&ep.Clock)
				loss := state.ComputeGrads(rank, size)
				ep.Compute(state.StepTime())
				var xerr error
				if cfg.Train.Mode == train.Real {
					xerr = w.AllreduceGrads(state.Names(), state.Grads())
				} else {
					xerr = w.AllreduceGradsVirtual(cfg.Train.Spec.Name, state.Schedule())
				}
				if xerr != nil {
					if errors.Is(xerr, simnet.ErrDead) {
						return xerr
					}
					// Failure recovery: the paper's Figure 4 pipeline.
					failE, failS = state.Epoch, state.Step
					bd = metrics.NewBreakdown()
					detect := stepSW.Lap() - state.StepTime()
					bd.Add(metrics.PhaseDetect, detect)
					ctx.Close()
					ep.Compute(cfg.ShutdownCost)
					bd.Add(metrics.PhaseShutdown, cfg.ShutdownCost)
					j.discover(ep, round+1)
					j.planRecovery(round+1, ep.Clock.Now())
					ep.Compute(cfg.DriverCost)
					bd.Add(metrics.PhaseReinitElastic, j.kv.Config().OpLatency*3+cfg.DriverCost)
					trigger = "failure"
					round++
					recovered = true
					continue
				}
				if !math.IsNaN(loss) {
					epochLoss += loss
					lossBatches++
				}
				state.ApplyStep()
				lastStepDur = stepSW.Elapsed()
				if cfg.CommitEverySteps > 0 && state.Step%cfg.CommitEverySteps == 0 && state.Step < steps {
					j.commit(ep, state)
				}
			}
			if recovered {
				break
			}
			if lossBatches > 0 {
				// Every rank records its shard-local epoch loss so the
				// reported history stays complete across rank changes.
				state.RecordLoss(state.Epoch, epochLoss/float64(lossBatches))
			}
			state.Epoch++
			state.Step = 0
		}
		if recovered {
			continue
		}
		ctx.Close()
		j.recordFinal(ep.ID(), state.Hash(), rank, size, state.LossHistory)
		return nil
	}
}

// syncState broadcasts rank 0's training state to all workers. Real mode
// moves the actual flat state; virtual mode moves the progress counters
// for real plus a virtual payload of the model's state size.
func (j *Job) syncState(w *horovod.Worker, state *train.State, ep *simnet.Endpoint) error {
	if j.cfg.Train.Mode == train.Real {
		flat := state.Flat()
		if err := w.BroadcastState(flat, 0); err != nil {
			return err
		}
		return state.SetFlat(flat)
	}
	head := state.Flat() // counters only in virtual mode
	if err := w.BroadcastState(head, 0); err != nil {
		return err
	}
	if err := state.SetFlat(head); err != nil {
		return err
	}
	return w.BroadcastStateVirtual(state.StateBytes(), 0)
}

// commit saves the worker's own in-memory checkpoint (Elastic Horovod's
// state.commit()), charging the local copy cost.
func (j *Job) commit(ep *simnet.Endpoint, state *train.State) {
	transport.Hit(ep.ID(), transport.PointElasticCommit)
	flat := state.Flat()
	ep.Compute(float64(state.StateBytes()) / j.cfg.MemCopyBW)
	j.ckpt.Save(int(ep.ID()), &checkpoint.Snapshot{
		Epoch:      state.Epoch,
		Step:       state.Step,
		Model:      flat,
		LR:         state.Opt.LR(),
		SavedAtSec: ep.Clock.Now(),
	})
}

// discover models the driver's host-discovery pass (the script Elastic
// Horovod invokes to enumerate usable hosts): one registration write and
// one listing per worker against the rendezvous store.
func (j *Job) discover(ep *simnet.Endpoint, nextRound int) {
	j.kv.Put(&ep.Clock, fmt.Sprintf("disc/%d/%d", nextRound, ep.ID()), nil)
	j.kv.List(&ep.Clock, fmt.Sprintf("disc/%d/", nextRound))
}

// stepsBetween counts optimizer steps from (e0,s0) to (e1,s1) given a
// steps-per-epoch figure (an estimate when sizes changed in between).
func stepsBetween(e0, s0, e1, s1, perEpoch int) int {
	if perEpoch <= 0 {
		perEpoch = 1
	}
	d := (e1-e0)*perEpoch + (s1 - s0)
	if d < 0 {
		return 0
	}
	return d
}
