package elastic

import (
	"testing"

	"repro/internal/failure"
)

// TestBaselineTwoFailures: two node-costing failures across epochs; the
// baseline resets twice and keeps shrinking (node granularity).
func TestBaselineTwoFailures(t *testing.T) {
	cl, kv := testCluster(4, 2)
	cfg := baseCfg(8, 6)
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 7, Kind: failure.KillProcess},
		{Epoch: 3, Step: 1, Type: failure.Fail, Rank: 0, Kind: failure.KillProcess},
	}}
	res := runJob(t, cl, kv, cfg)
	// Each process failure costs its whole 2-proc node: 8 -> 6 -> 4.
	if res.FinalSize != 4 {
		t.Fatalf("final size = %d, want 4", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 4)
	if len(res.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Events))
	}
}

// TestBaselineFailureThenUpscale mixes a failure reset with a later
// graceful grow.
func TestBaselineFailureThenUpscale(t *testing.T) {
	cl, kv := testCluster(3, 2)
	cfg := baseCfg(6, 7)
	cfg.Scenario = ScenarioUp
	cfg.Schedule = &failure.Schedule{Events: []failure.Event{
		{Epoch: 1, Step: 1, Type: failure.Fail, Rank: 5, Kind: failure.KillProcess},
		{Epoch: 3, Step: 1, Type: failure.Grow, Add: 4},
	}}
	res := runJob(t, cl, kv, cfg)
	// 6 -> 4 (node dropped) -> 8 (4 added, node-rounded: 4 = 2 nodes of 2).
	if res.FinalSize != 8 {
		t.Fatalf("final size = %d, want 8", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 8)
	if len(res.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(res.Events))
	}
	if res.Events[0].Trigger != "failure" || res.Events[1].Trigger != "upscale" {
		t.Fatalf("triggers = %q, %q", res.Events[0].Trigger, res.Events[1].Trigger)
	}
}
