package elastic

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/failure"
)

// TestBaselineScheduleScan drives the baseline's reset pipeline through a
// corpus of pseudo-random multi-failure schedules with a deadlock
// watchdog. Victims are drawn from distinct nodes so node blacklisting
// leaves every event addressable.
func TestBaselineScheduleScan(t *testing.T) {
	if testing.Short() {
		t.Skip("long scan")
	}
	for it := 0; it < 100; it++ {
		rng := rand.New(rand.NewSource(int64(it) * 104729))
		const nodes, ppn, epochs = 4, 2, 5
		workers := nodes * ppn
		nFail := rng.Intn(3) + 1
		usedNodes := map[int]bool{}
		var evs []failure.Event
		for len(usedNodes) < nFail {
			node := rng.Intn(nodes)
			if usedNodes[node] {
				continue
			}
			usedNodes[node] = true
			evs = append(evs, failure.Event{
				Epoch: 1 + rng.Intn(3), Step: rng.Intn(3),
				Type: failure.Fail, Rank: node*ppn + rng.Intn(ppn),
				Kind: failure.KillProcess,
			})
		}
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0; j-- {
				a, b := evs[j-1], evs[j]
				if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Step < a.Step) {
					evs[j-1], evs[j] = b, a
				}
			}
		}
		cl, kv := testCluster(nodes, ppn)
		cfg := baseCfg(workers, epochs)
		cfg.Schedule = &failure.Schedule{Events: evs}
		j, err := NewJob(cl, kv, cfg)
		if err != nil {
			t.Fatal(err)
		}
		type outcome struct {
			res *Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := j.Run()
			ch <- outcome{res, err}
		}()
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("iter %d (events %+v): %v", it, evs, o.err)
			}
			// Node blacklisting: each failure costs a whole node.
			want := workers - nFail*ppn
			if o.res.FinalSize != want {
				t.Fatalf("iter %d (events %+v): final size %d, want %d", it, evs, o.res.FinalSize, want)
			}
			var first uint64
			got := false
			for _, h := range o.res.FinalHashes {
				if !got {
					first, got = h, true
				} else if h != first {
					t.Fatalf("iter %d (events %+v): replica divergence", it, evs)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d (events %+v): reset deadlock", it, evs)
		}
	}
}
