// Package elastic reimplements the paper's baseline: Elastic Horovod over
// Gloo (and NCCL for GPU work). Recovery is checkpoint-based backward
// recovery with the full reset pipeline the paper's Figure 4 profiles:
//
//	catch exception  -> Gloo's unsuccessful-op timeout surfaces the fault
//	shutdown         -> abort outstanding operations, tear the context down
//	re-init elastic  -> driver reset + host discovery (KV traffic)
//	re-init Gloo     -> fresh rendezvous round + full-mesh reconnect
//	rendezvous       -> local (per-node) and global resume barriers
//	state sync       -> rank 0 broadcasts the rolled-back training state
//	recompute        -> re-execute the minibatches lost since the last
//	                    commit (backward recovery)
//
// Elasticity policy follows Elastic Horovod's published behavior: faults
// are handled at node granularity only (the failed worker's whole node is
// blacklisted, even for a single-process fault), and upscales join at
// reset points discovered by the driver.
package elastic

import (
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/gloo"
	"repro/internal/horovod"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/train"
)

// Scenario selects the paper's three reconfiguration scenarios.
type Scenario int

const (
	// ScenarioDown drops the failed workers (Scenario I).
	ScenarioDown Scenario = iota
	// ScenarioSame replaces them, keeping the worker count (Scenario II).
	ScenarioSame
	// ScenarioUp adds workers during training (Scenario III).
	ScenarioUp
)

func (s Scenario) String() string {
	switch s {
	case ScenarioDown:
		return "down"
	case ScenarioSame:
		return "same"
	default:
		return "up"
	}
}

// Config parameterizes a baseline job.
type Config struct {
	Train    train.Config
	Gloo     gloo.Config
	Horovod  horovod.Config
	UseGPU   bool
	NCCL     nccl.Config
	Scenario Scenario
	Schedule *failure.Schedule

	// CommitEverySteps adds intra-epoch commits; state is always
	// committed at epoch start (the paper's configuration).
	CommitEverySteps int

	// Cost-model constants (seconds).
	ShutdownCost  float64 // aborting outstanding ops + teardown
	DriverCost    float64 // driver reset decision + discovery script
	FrameworkInit float64 // new worker software init (framework+CUDA load)
	MemCopyBW     float64 // local state copy bandwidth for commits

	// StartRound seeds the rendezvous round namespace.
	StartRound int

	// Trace, when non-nil, receives a structured journal of resets,
	// joins, and completions.
	Trace *trace.Recorder
}

// DefaultCosts fills the cost-model constants with calibrated defaults.
func (c *Config) DefaultCosts() {
	if c.ShutdownCost == 0 {
		c.ShutdownCost = 0.15
	}
	if c.DriverCost == 0 {
		c.DriverCost = 0.3
	}
	if c.FrameworkInit == 0 {
		c.FrameworkInit = 4.0
	}
	if c.MemCopyBW == 0 {
		c.MemCopyBW = 10e9
	}
	if c.StartRound == 0 {
		c.StartRound = 1
	}
}

// EventReport aggregates one reconfiguration's cost breakdowns.
type EventReport struct {
	Round    int
	Trigger  string
	Critical *metrics.Breakdown // per-phase max across ranks (wall-clock view)
	Newcomer *metrics.Breakdown // per-phase max across newcomers only
	Ranks    int                // ranks that contributed
}

// Result summarizes a run.
type Result struct {
	Events      []*EventReport
	FinalHashes map[simnet.ProcID]uint64
	LossHistory []float64
	FinalSize   int
	TotalTime   float64
}

// assignment is the worker set of one rendezvous round.
type assignment struct {
	round     int
	procs     []simnet.ProcID
	newcomers map[simnet.ProcID]bool
	trigger   string
}

func (a *assignment) rankOf(p simnet.ProcID) int {
	for i, pr := range a.procs {
		if pr == p {
			return i
		}
	}
	return -1
}

// Job owns one baseline training run.
type Job struct {
	cluster *simnet.Cluster
	kv      *kvstore.Store
	cfg     Config
	ckpt    *checkpoint.Store
	group   *simnet.Group

	mu        sync.Mutex
	asn       map[int]*assignment
	blacklist map[simnet.NodeID]bool
	reports   map[int]*EventReport
	finals    map[simnet.ProcID]uint64
	loss      []float64
	finalSize int
}

// NewJob builds a job over an existing cluster and store.
func NewJob(cl *simnet.Cluster, kv *kvstore.Store, cfg Config) (*Job, error) {
	cfg.DefaultCosts()
	if err := cfg.Train.Validate(); err != nil {
		return nil, err
	}
	if cfg.Train.ReclaimLostSamples {
		return nil, fmt.Errorf("elastic: ReclaimLostSamples is not applicable — the baseline's rollback reshards the epoch over the survivors anyway")
	}
	return &Job{
		cluster:   cl,
		kv:        kv,
		cfg:       cfg,
		ckpt:      checkpoint.NewStore(),
		group:     simnet.NewGroup(),
		asn:       make(map[int]*assignment),
		blacklist: make(map[simnet.NodeID]bool),
		reports:   make(map[int]*EventReport),
		finals:    make(map[simnet.ProcID]uint64),
	}, nil
}

// Run executes the job to completion and returns the result.
func (j *Job) Run() (*Result, error) {
	procs := j.cluster.LiveProcs()
	initial := &assignment{round: j.cfg.StartRound, procs: procs, trigger: "initial"}
	j.mu.Lock()
	j.asn[j.cfg.StartRound] = initial
	j.mu.Unlock()
	for _, pid := range procs {
		ep := j.cluster.Endpoint(pid)
		j.group.Go(ep, func(ep *simnet.Endpoint) error {
			return j.runWorker(ep, j.cfg.StartRound, false)
		})
	}
	errs := j.group.Wait()
	if err := simnet.FirstError(errs); err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	res := &Result{
		FinalHashes: j.finals,
		LossHistory: j.loss,
		FinalSize:   j.finalSize,
		TotalTime:   j.cluster.MaxTime(),
	}
	for r := j.cfg.StartRound + 1; ; r++ {
		rep, ok := j.reports[r]
		if !ok {
			break
		}
		res.Events = append(res.Events, rep)
	}
	j.cfg.Trace.Run(res.TotalTime, res.FinalSize, len(res.Events))
	return res, nil
}

// assignmentFor returns the (memoized) assignment of a round.
func (j *Job) assignmentFor(round int) *assignment {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.asn[round]
}

// planRecovery computes the next round's assignment after a failure:
// blacklist the nodes of all dead processes, keep remaining live workers,
// and — in ScenarioSame — spawn replacements on fresh nodes. Idempotent
// per round; the first caller decides.
func (j *Job) planRecovery(nextRound int, at float64) *assignment {
	j.mu.Lock()
	defer j.mu.Unlock()
	if a, ok := j.asn[nextRound]; ok {
		return a
	}
	lostWorkers := 0
	prev := j.asn[nextRound-1]
	for _, pid := range prev.procs {
		node, err := j.cluster.NodeOf(pid)
		if err != nil {
			continue
		}
		if j.cluster.IsDead(pid) && !j.blacklist[node] {
			// Node-level blacklisting, Elastic Horovod's only policy.
			j.blacklist[node] = true
		}
	}
	var procs []simnet.ProcID
	for _, pid := range prev.procs {
		node, err := j.cluster.NodeOf(pid)
		if err != nil {
			continue
		}
		if !j.cluster.IsDead(pid) && !j.blacklist[node] {
			procs = append(procs, pid)
		}
	}
	lostWorkers = len(prev.procs) - len(procs)
	a := &assignment{round: nextRound, procs: procs, newcomers: map[simnet.ProcID]bool{}, trigger: "failure"}
	if j.cfg.Scenario == ScenarioSame && lostWorkers > 0 {
		j.spawnLocked(a, lostWorkers, at)
	}
	j.asn[nextRound] = a
	return a
}

// planUpscale computes the next round's assignment for a graceful grow.
func (j *Job) planUpscale(nextRound, add int, at float64) *assignment {
	j.mu.Lock()
	defer j.mu.Unlock()
	if a, ok := j.asn[nextRound]; ok {
		return a
	}
	prev := j.asn[nextRound-1]
	a := &assignment{
		round:     nextRound,
		procs:     append([]simnet.ProcID(nil), prev.procs...),
		newcomers: map[simnet.ProcID]bool{},
		trigger:   "upscale",
	}
	// Elastic Horovod adds capacity at host (node) granularity only:
	// round the request up to whole nodes (Table 2: "autoscaling by
	// process" is unsupported).
	ppn := j.cluster.Config().ProcsPerNode
	add = (add + ppn - 1) / ppn * ppn
	j.spawnLocked(a, add, at)
	j.asn[nextRound] = a
	return a
}

// spawnLocked provisions n new workers on fresh nodes, appends them to the
// assignment, and launches their goroutines.
func (j *Job) spawnLocked(a *assignment, n int, at float64) {
	ppn := j.cluster.Config().ProcsPerNode
	for n > 0 {
		node := j.cluster.AddNode()
		for i := 0; i < ppn && n > 0; i++ {
			ep, err := j.cluster.Spawn(node, at)
			if err != nil {
				continue
			}
			a.procs = append(a.procs, ep.ID())
			a.newcomers[ep.ID()] = true
			round := a.round
			j.group.Go(ep, func(ep *simnet.Endpoint) error {
				return j.runWorker(ep, round, true)
			})
			n--
		}
	}
}

// reportRecovery folds one rank's breakdown into the round's report.
func (j *Job) reportRecovery(round int, bd *metrics.Breakdown, newcomer bool, trigger string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rep, ok := j.reports[round]
	if !ok {
		rep = &EventReport{Round: round, Trigger: trigger}
		j.reports[round] = rep
	}
	rep.Ranks++
	if newcomer {
		rep.Newcomer = metrics.MaxOver(rep.Newcomer, bd)
	} else {
		rep.Critical = metrics.MaxOver(rep.Critical, bd)
	}
	j.cfg.Trace.Recovery(0, -1, round, trigger, bd, newcomer)
}

// recordFinal stores a finished worker's replica hash (and, at rank 0, the
// loss history and final size).
func (j *Job) recordFinal(p simnet.ProcID, hash uint64, rank, size int, loss []float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finals[p] = hash
	if rank == 0 {
		j.loss = append([]float64(nil), loss...)
		j.finalSize = size
	}
}

// barrierCancel implements the local/global rendezvous-resume barriers
// over the KV store's arrival counters, aborting with a recoverable error
// when cancel closes (a participant died before arriving).
func (j *Job) barrierCancel(ep *simnet.Endpoint, key string, n int64, cancel <-chan struct{}) error {
	j.kv.Add(&ep.Clock, key, 1)
	merged := cancel
	if done := ep.Done(); done != nil {
		merged = mergeDone(cancel, done)
	}
	_, ok := j.kv.WaitAtLeast(&ep.Clock, key, n, merged)
	if !ok {
		if ep.Closed() {
			return simnet.ErrDead
		}
		return fmt.Errorf("elastic: barrier %q canceled: %w", key, &simnet.PeerFailedError{Proc: -1})
	}
	return nil
}

// mergeDone merges two cancellation channels.
func mergeDone(a, b <-chan struct{}) <-chan struct{} {
	if a == nil {
		return b
	}
	out := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		}
		close(out)
	}()
	return out
}
