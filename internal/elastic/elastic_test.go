package elastic

import (
	"testing"

	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/gloo"
	"repro/internal/horovod"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/train"
)

func testCluster(nodes, ppn int) (*simnet.Cluster, *kvstore.Store) {
	cl := simnet.New(simnet.Config{
		Nodes:              nodes,
		ProcsPerNode:       ppn,
		IntraNodeLatency:   1e-6,
		InterNodeLatency:   30e-6,
		IntraNodeBandwidth: 20e9,
		InterNodeBandwidth: 3e9,
		DetectLatency:      1e-3,
		SpawnDelay:         2,
	})
	return cl, kvstore.New(kvstore.DefaultConfig())
}

func realTrainCfg(workers, epochs int) train.Config {
	return train.Config{
		Mode:       train.Real,
		MLPSizes:   []int{8, 16, 4},
		Seed:       3,
		Dataset:    data.NewSynthetic(360, 8, 4, 7),
		BatchSize:  10,
		Epochs:     epochs,
		BaseLR:     0.05,
		Momentum:   0.9,
		RefWorkers: workers,
	}
}

func baseCfg(workers, epochs int) Config {
	return Config{
		Train:    realTrainCfg(workers, epochs),
		Gloo:     gloo.DefaultConfig(),
		Horovod:  horovod.DefaultConfig(),
		Scenario: ScenarioDown,
		Schedule: failure.None(),
	}
}

func runJob(t *testing.T, cl *simnet.Cluster, kv *kvstore.Store, cfg Config) *Result {
	t.Helper()
	j, err := NewJob(cl, kv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertConsistentReplicas(t *testing.T, res *Result, want int) {
	t.Helper()
	if len(res.FinalHashes) != want {
		t.Fatalf("%d final replicas, want %d", len(res.FinalHashes), want)
	}
	var first uint64
	got := false
	for p, h := range res.FinalHashes {
		if !got {
			first, got = h, true
			continue
		}
		if h != first {
			t.Fatalf("replica divergence at proc %d: %v", p, res.FinalHashes)
		}
	}
}

func TestBaselineTrainsWithoutFailures(t *testing.T) {
	cl, kv := testCluster(2, 3)
	res := runJob(t, cl, kv, baseCfg(6, 4))
	if len(res.Events) != 0 {
		t.Fatalf("unexpected events: %v", res.Events)
	}
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 6)
	if len(res.LossHistory) < 2 || res.LossHistory[len(res.LossHistory)-1] >= res.LossHistory[0] {
		t.Fatalf("loss did not decrease: %v", res.LossHistory)
	}
}

func TestBaselineDownscaleDropsWholeNode(t *testing.T) {
	cl, kv := testCluster(2, 3)
	cfg := baseCfg(6, 4)
	cfg.Schedule = failure.At(1, 1, 4, failure.KillProcess) // single process fails...
	res := runJob(t, cl, kv, cfg)
	// ...but Elastic Horovod blacklists the whole node: 6 - 3 = 3 left.
	if res.FinalSize != 3 {
		t.Fatalf("final size = %d, want 3 (node blacklisting)", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 3)
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Trigger != "failure" {
		t.Fatalf("trigger = %q", ev.Trigger)
	}
	// The Figure 4 phases must all be present on the critical path.
	for _, ph := range []metrics.Phase{
		metrics.PhaseDetect, metrics.PhaseShutdown, metrics.PhaseReinitElastic,
		metrics.PhaseReinitGloo, metrics.PhaseRendezvousLocal,
		metrics.PhaseRendezvousGlob, metrics.PhaseStateSync, metrics.PhaseRecompute,
	} {
		if ev.Critical.Get(ph) <= 0 {
			t.Fatalf("phase %s missing from breakdown: %v", ph, ev.Critical)
		}
	}
	// Detection is timeout-driven: at least the Gloo failure timeout.
	if d := ev.Critical.Get(metrics.PhaseDetect); d < cfg.Gloo.FailureTimeout*0.9 {
		t.Fatalf("detect = %v, want >= Gloo timeout %v", d, cfg.Gloo.FailureTimeout)
	}
}

func TestBaselineReplacementKeepsSize(t *testing.T) {
	cl, kv := testCluster(2, 3)
	cfg := baseCfg(6, 5)
	cfg.Scenario = ScenarioSame
	cfg.Schedule = failure.At(1, 1, 2, failure.KillProcess)
	res := runJob(t, cl, kv, cfg)
	if res.FinalSize != 6 {
		t.Fatalf("final size = %d, want 6 (node replaced)", res.FinalSize)
	}
	// 3 survivors + 3 replacements (node granularity).
	assertConsistentReplicas(t, res, 6)
	ev := res.Events[0]
	if ev.Newcomer == nil || ev.Newcomer.Get(metrics.PhaseNewWorkerInit) <= 0 {
		t.Fatal("newcomer breakdown missing")
	}
	if ev.Newcomer.Get(metrics.PhaseReinitGloo) <= 0 {
		t.Fatal("newcomers must pay the Gloo rendezvous too")
	}
}

func TestBaselineUpscale(t *testing.T) {
	cl, kv := testCluster(1, 4)
	cfg := baseCfg(4, 5)
	cfg.Scenario = ScenarioUp
	cfg.Schedule = failure.GrowAt(1, 1, 4)
	res := runJob(t, cl, kv, cfg)
	if res.FinalSize != 8 {
		t.Fatalf("final size = %d, want 8", res.FinalSize)
	}
	assertConsistentReplicas(t, res, 8)
	ev := res.Events[0]
	if ev.Trigger != "upscale" {
		t.Fatalf("trigger = %q", ev.Trigger)
	}
	// Graceful reset: no exception catching, no recompute, but the full
	// re-rendezvous is still paid — Elastic Horovod's weakness.
	if ev.Critical.Get(metrics.PhaseDetect) != 0 {
		t.Fatal("graceful upscale should not catch exceptions")
	}
	if ev.Critical.Get(metrics.PhaseRecompute) != 0 {
		t.Fatal("graceful upscale should not recompute")
	}
	if ev.Critical.Get(metrics.PhaseReinitGloo) <= 0 {
		t.Fatal("upscale must still re-init Gloo")
	}
}

func TestBaselineVirtualModeWithGPU(t *testing.T) {
	cl, kv := testCluster(4, 6)
	cfg := Config{
		Train: train.Config{
			Mode:       train.Virtual,
			Spec:       models.ResNet50V2,
			Epochs:     2,
			BaseLR:     0.1,
			RefWorkers: 12,
		},
		Gloo:     gloo.DefaultConfig(),
		Horovod:  horovod.DefaultConfig(),
		UseGPU:   true,
		NCCL:     nccl.DefaultConfig(),
		Scenario: ScenarioDown,
		Schedule: failure.At(1, 1, 7, failure.KillProcess),
	}
	res := runJob(t, cl, kv, cfg)
	if res.FinalSize != 18 {
		t.Fatalf("final size = %d, want 18 (one node of 6 dropped)", res.FinalSize)
	}
	ev := res.Events[0]
	if ev.Critical.Get(metrics.PhaseGPUReinit) <= 0 {
		t.Fatal("NCCL reinit missing")
	}
	if ev.Critical.Get(metrics.PhaseStateSync) <= 0 {
		t.Fatal("state sync missing")
	}
}

func TestBaselineRecomputeGrowsWithLostWork(t *testing.T) {
	// A failure later in the epoch loses more steps since the epoch-start
	// commit, so the recompute phase must grow.
	recomputeAt := func(step int) float64 {
		cl, kv := testCluster(2, 2)
		cfg := baseCfg(4, 4)
		cfg.Schedule = failure.At(1, step, 1, failure.KillProcess)
		res := runJob(t, cl, kv, cfg)
		if len(res.Events) != 1 {
			t.Fatalf("events = %d", len(res.Events))
		}
		return res.Events[0].Critical.Get(metrics.PhaseRecompute)
	}
	early := recomputeAt(1)
	late := recomputeAt(7)
	if !(late > early) {
		t.Fatalf("recompute should grow with lost steps: early=%v late=%v", early, late)
	}
}

func TestBaselineCommitEverySteps(t *testing.T) {
	cl, kv := testCluster(2, 2)
	cfg := baseCfg(4, 4)
	cfg.CommitEverySteps = 2
	cfg.Schedule = failure.At(1, 7, 1, failure.KillProcess)
	res := runJob(t, cl, kv, cfg)
	// With commits every 2 steps, at most ~2 steps of recompute; compare
	// against epoch-only commits which lose ~7.
	cl2, kv2 := testCluster(2, 2)
	cfg2 := baseCfg(4, 4)
	cfg2.Schedule = failure.At(1, 7, 1, failure.KillProcess)
	res2 := runJob(t, cl2, kv2, cfg2)
	if !(res.Events[0].Critical.Get(metrics.PhaseRecompute) < res2.Events[0].Critical.Get(metrics.PhaseRecompute)) {
		t.Fatalf("frequent commits should reduce recompute: %v vs %v",
			res.Events[0].Critical.Get(metrics.PhaseRecompute),
			res2.Events[0].Critical.Get(metrics.PhaseRecompute))
	}
}

func TestScenarioString(t *testing.T) {
	if ScenarioDown.String() != "down" || ScenarioSame.String() != "same" || ScenarioUp.String() != "up" {
		t.Fatal("Scenario.String wrong")
	}
}
