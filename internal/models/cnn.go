package models

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CNN is a small, genuinely trainable convolutional network for image-like
// synthetic inputs: one 2D convolution layer (ReLU), 2x2 average pooling,
// and a dense softmax head. It complements the MLP as a second real
// workload whose gradient tensors have the conv/dense size skew of the
// paper's benchmark networks (a few large kernels plus small biases).
type CNN struct {
	Img     int // input is Img x Img, single channel
	Filters int // conv output channels
	K       int // kernel size (odd, same-padding)
	Classes int

	ConvW tensor.Vector // Filters x K x K
	ConvB tensor.Vector // Filters
	FCW   tensor.Vector // Classes x (Filters * pooled * pooled)
	FCB   tensor.Vector // Classes
}

// NewCNN builds a deterministic CNN. Img must be even (for 2x2 pooling)
// and K odd (for same-padding).
func NewCNN(img, filters, k, classes int, seed int64) *CNN {
	if img%2 != 0 {
		panic("models: CNN image size must be even")
	}
	if k%2 == 0 {
		panic("models: CNN kernel size must be odd")
	}
	m := &CNN{Img: img, Filters: filters, K: k, Classes: classes}
	m.ConvW = tensor.New(filters * k * k)
	m.ConvW.FillRandom(seed, float32(math.Sqrt(2.0/float64(k*k))))
	m.ConvB = tensor.New(filters)
	pooled := img / 2
	fcIn := filters * pooled * pooled
	m.FCW = tensor.New(classes * fcIn)
	m.FCW.FillRandom(seed+1, float32(math.Sqrt(2.0/float64(fcIn))))
	m.FCB = tensor.New(classes)
	return m
}

// Params returns the trainable tensors in schedule order.
func (m *CNN) Params() []tensor.Vector {
	return []tensor.Vector{m.ConvW, m.ConvB, m.FCW, m.FCB}
}

// ParamCount returns the total trainable parameter count.
func (m *CNN) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p)
	}
	return n
}

// ZeroGrads returns gradient buffers shaped like Params.
func (m *CNN) ZeroGrads() []tensor.Vector {
	ps := m.Params()
	out := make([]tensor.Vector, len(ps))
	for i, p := range ps {
		out[i] = tensor.New(len(p))
	}
	return out
}

// forward computes the full activation set for one example.
type cnnActs struct {
	conv   []float32 // Filters x Img x Img, post-ReLU
	preact []float32 // pre-ReLU conv output
	pooled []float32 // Filters x (Img/2) x (Img/2)
	logits []float32
}

func (m *CNN) forward(x []float32) *cnnActs {
	img, f, k := m.Img, m.Filters, m.K
	half := k / 2
	a := &cnnActs{
		conv:   make([]float32, f*img*img),
		preact: make([]float32, f*img*img),
		pooled: make([]float32, f*(img/2)*(img/2)),
		logits: make([]float32, m.Classes),
	}
	// Convolution with same-padding.
	for c := 0; c < f; c++ {
		for y := 0; y < img; y++ {
			for xx := 0; xx < img; xx++ {
				s := m.ConvB[c]
				for ky := 0; ky < k; ky++ {
					iy := y + ky - half
					if iy < 0 || iy >= img {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := xx + kx - half
						if ix < 0 || ix >= img {
							continue
						}
						s += m.ConvW[c*k*k+ky*k+kx] * x[iy*img+ix]
					}
				}
				idx := c*img*img + y*img + xx
				a.preact[idx] = s
				if s > 0 {
					a.conv[idx] = s
				}
			}
		}
	}
	// 2x2 average pooling.
	p := img / 2
	for c := 0; c < f; c++ {
		for y := 0; y < p; y++ {
			for xx := 0; xx < p; xx++ {
				var s float32
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						s += a.conv[c*img*img+(2*y+dy)*img+(2*xx+dx)]
					}
				}
				a.pooled[c*p*p+y*p+xx] = s / 4
			}
		}
	}
	// Dense head.
	fcIn := f * p * p
	for cl := 0; cl < m.Classes; cl++ {
		s := m.FCB[cl]
		row := m.FCW[cl*fcIn : (cl+1)*fcIn]
		for i, v := range a.pooled {
			s += row[i] * v
		}
		a.logits[cl] = s
	}
	return a
}

// Forward returns the logits for one flattened Img x Img example.
func (m *CNN) Forward(x []float32) []float32 {
	return m.forward(x).logits
}

// LossAndGrad runs forward+backward for a batch, accumulating averaged
// gradients into grads (shaped like Params); returns mean loss and
// accuracy.
func (m *CNN) LossAndGrad(xs [][]float32, ys []int, grads []tensor.Vector) (loss, acc float64) {
	if len(grads) != 4 {
		panic(fmt.Sprintf("models: CNN gradient shape mismatch: %d", len(grads)))
	}
	for _, g := range grads {
		g.Zero()
	}
	img, f, k := m.Img, m.Filters, m.K
	half := k / 2
	p := img / 2
	fcIn := f * p * p
	inv := 1 / float32(len(xs))

	for bi, x := range xs {
		a := m.forward(x)
		probs, l, correct := softmaxLoss(a.logits, ys[bi])
		loss += l
		if correct {
			acc++
		}
		delta := probs
		delta[ys[bi]] -= 1

		// Dense head gradients + pooled delta.
		dPooled := make([]float32, fcIn)
		for cl := 0; cl < m.Classes; cl++ {
			d := delta[cl] * inv
			grads[3][cl] += d
			row := grads[2][cl*fcIn : (cl+1)*fcIn]
			wrow := m.FCW[cl*fcIn : (cl+1)*fcIn]
			for i, v := range a.pooled {
				row[i] += d * v
				dPooled[i] += delta[cl] * wrow[i]
			}
		}
		// Un-pool (average): each conv cell gets 1/4 of its pool's delta,
		// gated by the ReLU.
		dConv := make([]float32, f*img*img)
		for c := 0; c < f; c++ {
			for y := 0; y < p; y++ {
				for xx := 0; xx < p; xx++ {
					d := dPooled[c*p*p+y*p+xx] / 4
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := c*img*img + (2*y+dy)*img + (2*xx + dx)
							if a.preact[idx] > 0 {
								dConv[idx] = d
							}
						}
					}
				}
			}
		}
		// Convolution gradients.
		for c := 0; c < f; c++ {
			for y := 0; y < img; y++ {
				for xx := 0; xx < img; xx++ {
					d := dConv[c*img*img+y*img+xx]
					if d == 0 {
						continue
					}
					grads[1][c] += d * inv
					for ky := 0; ky < k; ky++ {
						iy := y + ky - half
						if iy < 0 || iy >= img {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := xx + kx - half
							if ix < 0 || ix >= img {
								continue
							}
							grads[0][c*k*k+ky*k+kx] += d * x[iy*img+ix] * inv
						}
					}
				}
			}
		}
	}
	return loss / float64(len(xs)), acc / float64(len(xs))
}

// StateHash fingerprints the parameters.
func (m *CNN) StateHash() uint64 {
	return tensor.Concat(m.Params()).Hash()
}

// State and SetState snapshot/restore the flat parameter vector.
func (m *CNN) State() tensor.Vector { return tensor.Concat(m.Params()) }

func (m *CNN) SetState(flat tensor.Vector) { tensor.SplitLike(flat, m.Params()) }
