package models

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MLP is a small, genuinely trainable multi-layer perceptron with ReLU
// hidden activations and a softmax cross-entropy head. It validates that
// elastic training with resilient collectives preserves learning: replicas
// must stay synchronized and the loss must decrease through failures,
// replacements, and joins.
type MLP struct {
	Sizes []int // layer widths, input first, classes last
	W     []tensor.Vector
	B     []tensor.Vector
}

// NewMLP builds an MLP with the given layer widths, deterministically
// initialized from seed (He-style scaling).
func NewMLP(sizes []int, seed int64) *MLP {
	if len(sizes) < 2 {
		panic("models: MLP needs at least input and output widths")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := tensor.New(in * out)
		scale := float32(math.Sqrt(2.0 / float64(in)))
		w.FillRandom(seed+int64(l)*7919, scale)
		m.W = append(m.W, w)
		m.B = append(m.B, tensor.New(out))
	}
	return m
}

// Params returns the trainable tensors in schedule order (W0,B0,W1,B1,...).
func (m *MLP) Params() []tensor.Vector {
	out := make([]tensor.Vector, 0, 2*len(m.W))
	for l := range m.W {
		out = append(out, m.W[l], m.B[l])
	}
	return out
}

// ParamCount returns the total number of trainable parameters.
func (m *MLP) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p)
	}
	return n
}

// ZeroGrads returns gradient tensors shaped like Params.
func (m *MLP) ZeroGrads() []tensor.Vector {
	ps := m.Params()
	out := make([]tensor.Vector, len(ps))
	for i, p := range ps {
		out[i] = tensor.New(len(p))
	}
	return out
}

// Forward computes the logits for one example.
func (m *MLP) Forward(x []float32) []float32 {
	a := x
	for l := range m.W {
		a = m.layerForward(l, a, l+1 < len(m.W))
	}
	return a
}

func (m *MLP) layerForward(l int, in []float32, relu bool) []float32 {
	ni, no := m.Sizes[l], m.Sizes[l+1]
	out := make([]float32, no)
	w := m.W[l]
	for o := 0; o < no; o++ {
		s := m.B[l][o]
		row := w[o*ni : (o+1)*ni]
		for i, x := range in {
			s += row[i] * x
		}
		if relu && s < 0 {
			s = 0
		}
		out[o] = s
	}
	return out
}

// LossAndGrad runs forward+backward for a batch of examples, accumulating
// parameter gradients (averaged over the batch) into grads (shaped like
// Params) and returning the mean cross-entropy loss and accuracy.
func (m *MLP) LossAndGrad(xs [][]float32, ys []int, grads []tensor.Vector) (loss float64, acc float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("models: batch mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(grads) != 2*len(m.W) {
		panic("models: gradient shape mismatch")
	}
	for _, g := range grads {
		g.Zero()
	}
	nl := len(m.W)
	inv := 1 / float32(len(xs))
	for bi, x := range xs {
		// Forward pass, keeping activations.
		acts := make([][]float32, nl+1)
		acts[0] = x
		for l := 0; l < nl; l++ {
			acts[l+1] = m.layerForward(l, acts[l], l+1 < nl)
		}
		logits := acts[nl]
		probs, l2, correct := softmaxLoss(logits, ys[bi])
		loss += l2
		if correct {
			acc++
		}
		// Backward pass.
		delta := probs // dL/dlogits = probs - onehot
		delta[ys[bi]] -= 1
		for l := nl - 1; l >= 0; l-- {
			ni, no := m.Sizes[l], m.Sizes[l+1]
			gw := grads[2*l]
			gb := grads[2*l+1]
			in := acts[l]
			for o := 0; o < no; o++ {
				d := delta[o] * inv
				gb[o] += d
				row := gw[o*ni : (o+1)*ni]
				for i, a := range in {
					row[i] += d * a
				}
			}
			if l > 0 {
				prev := make([]float32, ni)
				w := m.W[l]
				for o := 0; o < no; o++ {
					d := delta[o]
					row := w[o*ni : (o+1)*ni]
					for i := range prev {
						prev[i] += d * row[i]
					}
				}
				// ReLU derivative of the hidden activation.
				for i := range prev {
					if acts[l][i] <= 0 {
						prev[i] = 0
					}
				}
				delta = prev
			}
		}
	}
	return loss / float64(len(xs)), acc / float64(len(xs))
}

// softmaxLoss returns the softmax probabilities (reused as the gradient
// buffer), the cross-entropy loss, and whether argmax matched the label.
func softmaxLoss(logits []float32, label int) ([]float32, float64, bool) {
	maxv := logits[0]
	argmax := 0
	for i, v := range logits {
		if v > maxv {
			maxv, argmax = v, i
		}
	}
	var sum float64
	probs := make([]float32, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v - maxv))
		probs[i] = float32(e)
		sum += e
	}
	for i := range probs {
		probs[i] = float32(float64(probs[i]) / sum)
	}
	p := float64(probs[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return probs, -math.Log(p), argmax == label
}

// StateHash fingerprints the full parameter state for replica-consistency
// checks.
func (m *MLP) StateHash() uint64 {
	return tensor.Concat(m.Params()).Hash()
}

// SetState overwrites the parameters from a flat snapshot.
func (m *MLP) SetState(flat tensor.Vector) {
	tensor.SplitLike(flat, m.Params())
}

// State returns a flat snapshot of the parameters.
func (m *MLP) State() tensor.Vector {
	return tensor.Concat(m.Params())
}
