package models

import (
	"testing"

	"repro/internal/data"
	"repro/internal/optimizer"
)

func TestTable1Specs(t *testing.T) {
	// The numbers the paper's Table 1 reports.
	cases := []struct {
		spec      Spec
		trainable int
		depth     int
		params    int
		sizeMB    float64
	}{
		{VGG16, 32, 16, 143_700_000, 549},
		{ResNet50V2, 272, 307, 25_600_000, 98},
		{NasNetMobile, 1126, 389, 5_300_000, 23},
	}
	for _, tc := range cases {
		s := tc.spec
		if s.Trainable != tc.trainable || s.Depth != tc.depth || s.Params != tc.params || s.SizeMB != tc.sizeMB {
			t.Fatalf("%s spec = %+v, want Table 1 values", s.Name, s)
		}
		// Size column consistency: params * 4B ≈ SizeMB (the paper rounds).
		gotMB := float64(s.Params) * 4 / 1e6
		if gotMB < s.SizeMB*0.9 || gotMB > s.SizeMB*1.1 {
			t.Fatalf("%s: params*4 = %.0f MB inconsistent with SizeMB %v", s.Name, gotMB, s.SizeMB)
		}
	}
}

func TestAllAndByName(t *testing.T) {
	if got := len(All()); got != 3 {
		t.Fatalf("All() = %d models", got)
	}
	s, err := ByName("VGG-16")
	if err != nil || s.Params != VGG16.Params {
		t.Fatalf("ByName = %+v, %v", s, err)
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("ByName should fail for unknown model")
	}
}

func TestTensorScheduleInvariants(t *testing.T) {
	for _, s := range All() {
		sched := s.TensorSchedule()
		if len(sched) != s.Trainable {
			t.Fatalf("%s: schedule has %d tensors, want %d", s.Name, len(sched), s.Trainable)
		}
		sum := 0
		for i, sz := range sched {
			if sz < 1 {
				t.Fatalf("%s: tensor %d size %d", s.Name, i, sz)
			}
			if i > 0 && sz > sched[i-1] {
				t.Fatalf("%s: schedule not descending at %d", s.Name, i)
			}
			sum += sz
		}
		if sum != s.Params {
			t.Fatalf("%s: schedule sums to %d, want %d", s.Name, sum, s.Params)
		}
	}
}

func TestGradientBytes(t *testing.T) {
	if got := VGG16.GradientBytes(); got != int64(143_700_000)*4 {
		t.Fatalf("GradientBytes = %d", got)
	}
}

func TestEpochSteps(t *testing.T) {
	s := ResNet50V2
	if a, b := s.EpochSteps(12), s.EpochSteps(24); a != 2*b {
		t.Fatalf("doubling workers should halve steps: %d vs %d", a, b)
	}
	if got := s.EpochSteps(0); got != s.StepsEpoch {
		t.Fatalf("EpochSteps(0) = %d", got)
	}
	if got := s.EpochSteps(100000); got != 1 {
		t.Fatalf("EpochSteps should floor at 1, got %d", got)
	}
}

func TestMLPForwardShapes(t *testing.T) {
	m := NewMLP([]int{4, 8, 3}, 1)
	out := m.Forward([]float32{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("Forward output len %d", len(out))
	}
	if m.ParamCount() != 4*8+8+8*3+3 {
		t.Fatalf("ParamCount = %d", m.ParamCount())
	}
	if len(m.Params()) != 4 {
		t.Fatalf("Params len = %d", len(m.Params()))
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a := NewMLP([]int{4, 8, 3}, 7)
	b := NewMLP([]int{4, 8, 3}, 7)
	if a.StateHash() != b.StateHash() {
		t.Fatal("same seed must give same init")
	}
	c := NewMLP([]int{4, 8, 3}, 8)
	if a.StateHash() == c.StateHash() {
		t.Fatal("different seeds must differ")
	}
}

// Numerical gradient check: backprop must match finite differences.
func TestMLPGradientCheck(t *testing.T) {
	m := NewMLP([]int{3, 5, 2}, 3)
	xs := [][]float32{{0.5, -0.2, 0.8}}
	ys := []int{1}
	grads := m.ZeroGrads()
	m.LossAndGrad(xs, ys, grads)

	params := m.Params()
	const eps = 1e-3
	checked := 0
	for pi, p := range params {
		for j := 0; j < len(p); j += 3 { // sample every 3rd param
			orig := p[j]
			p[j] = orig + eps
			lp, _ := m.LossAndGrad(xs, ys, m.ZeroGrads())
			p[j] = orig - eps
			lm, _ := m.LossAndGrad(xs, ys, m.ZeroGrads())
			p[j] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi][j])
			if diff := want - got; diff > 2e-2 || diff < -2e-2 {
				t.Fatalf("param[%d][%d]: analytic %v vs numeric %v", pi, j, got, want)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("gradient check covered only %d params", checked)
	}
}

// The MLP must actually learn the synthetic task.
func TestMLPLearnsSyntheticTask(t *testing.T) {
	ds := data.NewSynthetic(512, 8, 4, 11)
	m := NewMLP([]int{8, 32, 4}, 5)
	opt := optimizer.NewSGD(0.2, 0.9)
	grads := m.ZeroGrads()

	var firstLoss, lastLoss float64
	for epoch := 0; epoch < 30; epoch++ {
		shard := ds.Shard(epoch, 0, 1)
		var epochLoss float64
		batches := data.Batches(shard, 32)
		for _, b := range batches {
			xs, ys := ds.Batch(b)
			loss, _ := m.LossAndGrad(xs, ys, grads)
			epochLoss += loss
			opt.Step(m.Params(), grads)
		}
		epochLoss /= float64(len(batches))
		if epoch == 0 {
			firstLoss = epochLoss
		}
		lastLoss = epochLoss
	}
	if lastLoss > firstLoss*0.5 {
		t.Fatalf("MLP did not learn: first %v last %v", firstLoss, lastLoss)
	}
}

func TestMLPStateRoundTrip(t *testing.T) {
	m := NewMLP([]int{4, 6, 2}, 1)
	snap := m.State()
	h := m.StateHash()
	// Perturb, then restore.
	m.Params()[0][0] += 1
	if m.StateHash() == h {
		t.Fatal("hash should change after perturbation")
	}
	m.SetState(snap)
	if m.StateHash() != h {
		t.Fatal("SetState did not restore the exact state")
	}
}
