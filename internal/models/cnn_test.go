package models

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/optimizer"
)

func testCNN() *CNN { return NewCNN(8, 4, 3, 3, 5) }

// imageBatch adapts the synthetic dataset's flat vectors as 8x8 images.
func imageBatch(ds *data.Synthetic, idxs []int) ([][]float32, []int) {
	xs := make([][]float32, len(idxs))
	ys := make([]int, len(idxs))
	for i, idx := range idxs {
		x, y := ds.Sample(idx)
		xs[i] = x
		ys[i] = y
	}
	return xs, ys
}

func TestCNNShapes(t *testing.T) {
	m := testCNN()
	if got := m.ParamCount(); got != 4*3*3+4+3*(4*4*4)+3 {
		t.Fatalf("ParamCount = %d", got)
	}
	out := m.Forward(make([]float32, 64))
	if len(out) != 3 {
		t.Fatalf("Forward len = %d", len(out))
	}
	if len(m.Params()) != 4 || len(m.ZeroGrads()) != 4 {
		t.Fatal("Params/ZeroGrads shape wrong")
	}
}

func TestCNNDeterministicInit(t *testing.T) {
	if NewCNN(8, 4, 3, 3, 5).StateHash() != NewCNN(8, 4, 3, 3, 5).StateHash() {
		t.Fatal("same seed differs")
	}
	if NewCNN(8, 4, 3, 3, 5).StateHash() == NewCNN(8, 4, 3, 3, 6).StateHash() {
		t.Fatal("different seeds match")
	}
}

func TestCNNInvalidShapesPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewCNN(7, 4, 3, 3, 1) }, // odd image
		func() { NewCNN(8, 4, 4, 3, 1) }, // even kernel
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Numerical gradient check for the CNN backward pass.
func TestCNNGradientCheck(t *testing.T) {
	m := testCNN()
	ds := data.NewSynthetic(16, 64, 3, 9)
	xs, ys := imageBatch(ds, []int{0, 1})
	grads := m.ZeroGrads()
	m.LossAndGrad(xs, ys, grads)

	const eps = 1e-3
	checked := 0
	for pi, p := range m.Params() {
		stride := len(p)/6 + 1
		for j := 0; j < len(p); j += stride {
			orig := p[j]
			p[j] = orig + eps
			lp, _ := m.LossAndGrad(xs, ys, m.ZeroGrads())
			p[j] = orig - eps
			lm, _ := m.LossAndGrad(xs, ys, m.ZeroGrads())
			p[j] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(grads[pi][j])
			if d := math.Abs(want - got); d > 3e-2 {
				t.Fatalf("param[%d][%d]: analytic %v vs numeric %v", pi, j, got, want)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("only %d params checked", checked)
	}
}

func TestCNNLearns(t *testing.T) {
	ds := data.NewSynthetic(256, 64, 3, 11)
	m := testCNN()
	opt := optimizer.NewSGD(0.1, 0.9)
	grads := m.ZeroGrads()

	var first, last float64
	for epoch := 0; epoch < 12; epoch++ {
		shard := ds.Shard(epoch, 0, 1)
		var el float64
		batches := data.Batches(shard, 16)
		for _, b := range batches {
			xs, ys := imageBatch(ds, b)
			l, _ := m.LossAndGrad(xs, ys, grads)
			el += l
			opt.Step(m.Params(), grads)
		}
		el /= float64(len(batches))
		if epoch == 0 {
			first = el
		}
		last = el
	}
	if last > first*0.7 {
		t.Fatalf("CNN did not learn: first %v last %v", first, last)
	}
}

func TestCNNStateRoundTrip(t *testing.T) {
	m := testCNN()
	h := m.StateHash()
	snap := m.State()
	m.ConvW[0] += 1
	if m.StateHash() == h {
		t.Fatal("hash unchanged after perturbation")
	}
	m.SetState(snap)
	if m.StateHash() != h {
		t.Fatal("SetState did not restore")
	}
}
