// Package models describes the paper's benchmark networks and provides a
// small really-trainable network for correctness validation.
//
// The paper's Table 1 selects three Keras applications by trainable
// parameter size, because the parameter size and tensor-count distribution
// determine the allreduce traffic: VGG-16 (143.7M params / 549 MB),
// ResNet50V2 (25.6M / 98 MB), NasNetMobile (5.3M / 23 MB). ImageNet-scale
// training on V100s is substituted by parameter-exact synthetic
// descriptors: the tensor schedule (sizes and count) and the per-step
// compute-time model reproduce the communication and computation profile
// without materializing the networks.
package models

import (
	"fmt"
	"math"
)

// Spec describes a benchmark model: the columns of the paper's Table 1
// plus the performance-model constants the experiments need.
type Spec struct {
	Name       string
	Trainable  int     // number of trainable tensors (Table 1 "Trainable")
	Depth      int     // topological depth (Table 1 "Depth")
	Params     int     // total trainable parameters (Table 1 "Total Parameters")
	SizeMB     float64 // parameter size in MB (Table 1 "Size (MB)")
	StepTimeS  float64 // fwd+bwd seconds per minibatch per GPU (V100, batch 32)
	StepsEpoch int     // optimizer steps per epoch at the reference scale
}

// The three Table 1 models.
var (
	VGG16 = Spec{
		Name:       "VGG-16",
		Trainable:  32,
		Depth:      16,
		Params:     143_700_000,
		SizeMB:     549,
		StepTimeS:  0.360,
		StepsEpoch: 100,
	}
	ResNet50V2 = Spec{
		Name:       "ResNet50V2",
		Trainable:  272,
		Depth:      307,
		Params:     25_600_000,
		SizeMB:     98,
		StepTimeS:  0.230,
		StepsEpoch: 100,
	}
	NasNetMobile = Spec{
		Name:       "NasNetMobile",
		Trainable:  1126,
		Depth:      389,
		Params:     5_300_000,
		SizeMB:     23,
		StepTimeS:  0.110,
		StepsEpoch: 100,
	}
)

// All lists the Table 1 models in the paper's order.
func All() []Spec { return []Spec{VGG16, ResNet50V2, NasNetMobile} }

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("models: unknown model %q", name)
}

// GradientBytes returns the total gradient traffic per optimizer step in
// bytes (float32 parameters).
func (s Spec) GradientBytes() int64 { return int64(s.Params) * 4 }

// TensorSchedule returns the per-tensor element counts, largest first —
// the order gradients become ready during backprop is roughly
// output-layer-first, and output layers hold the bulk of parameters in
// these CNNs. The schedule is deterministic, has exactly s.Trainable
// entries, and sums exactly to s.Params, with a heavy-tailed size
// distribution mirroring real networks (a few huge kernels, many small
// bias/batch-norm vectors).
func (s Spec) TensorSchedule() []int {
	n := s.Trainable
	sizes := make([]int, n)
	// Geometric-ish decay: tensor i gets weight r^i. Choose r so the
	// largest tensor is ~35-50% of the total for small n (VGG-like) and
	// flatter for large n (NasNet-like).
	r := math.Pow(0.01, 1.0/float64(n)) // last tensor ~1% the weight of the first
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(r, float64(i))
		wsum += weights[i]
	}
	assigned := 0
	for i := range sizes {
		sz := int(float64(s.Params) * weights[i] / wsum)
		if sz < 1 {
			sz = 1
		}
		sizes[i] = sz
		assigned += sz
	}
	// Fix rounding drift on the largest tensor.
	sizes[0] += s.Params - assigned
	if sizes[0] < 1 {
		panic("models: schedule rounding underflow")
	}
	return sizes
}

// StepTime returns the fwd+bwd compute time for one minibatch on one GPU.
// Weak scaling: per-GPU batch is fixed, so compute time is scale-invariant.
func (s Spec) StepTime() float64 { return s.StepTimeS }

// EpochSteps returns optimizer steps per epoch when the global dataset is
// sharded over `workers` GPUs with a fixed per-GPU batch (weak scaling on
// a fixed dataset: more workers means fewer steps per epoch).
func (s Spec) EpochSteps(workers int) int {
	if workers <= 0 {
		return s.StepsEpoch
	}
	// Reference: StepsEpoch steps at 12 GPUs.
	steps := s.StepsEpoch * 12 / workers
	if steps < 1 {
		steps = 1
	}
	return steps
}
