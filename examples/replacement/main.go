// Replacement (the paper's Scenario II): keep the worker count stable by
// spawning substitutes for failed workers. With ULFM the survivors finish
// the interrupted epoch in degraded mode (forward recovery) while the
// replacements initialize in the background; the newcomers merge at the
// next epoch boundary and receive the training state from the survivors,
// so they start at epoch i+1 — exactly the timeline the paper describes.
//
// Run with:
//
//	go run ./examples/replacement
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/train"
)

func main() {
	cluster := simnet.New(simnet.Config{
		Nodes:              2,
		ProcsPerNode:       4,
		IntraNodeLatency:   1.5e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      2e-3,
		SpawnDelay:         3, // scheduler + binary load for the replacement
	})

	cfg := core.Config{
		Train: train.Config{
			Mode:       train.Real,
			MLPSizes:   []int{8, 24, 4},
			Seed:       1,
			Dataset:    data.NewSynthetic(640, 8, 4, 3),
			BatchSize:  10,
			Epochs:     6,
			BaseLR:     0.05,
			Momentum:   0.9,
			RefWorkers: 8,
		},
		Horovod:    horovod.DefaultConfig(),
		Scenario:   core.ScenarioSame, // replace what fails
		DropPolicy: failure.KillProcess,
		Schedule:   failure.At(2, 2, 5, failure.KillProcess),
	}

	job, err := core.NewJob(cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("worker count: 8 -> failure -> %d (replaced)\n\n", res.FinalSize)
	for _, ev := range res.Events {
		fmt.Printf("survivors' recovery (epoch continues in degraded mode):\n  %s\n", ev.Critical)
		if ev.Newcomer != nil {
			fmt.Printf("replacement worker (initialized in the background, joins at the next epoch):\n  %s\n", ev.Newcomer)
			fmt.Printf("\nnote: new-worker-init (%.1fs) overlaps with continued training —\n",
				ev.Newcomer.Get(metrics.PhaseNewWorkerInit))
			fmt.Println("the survivors never stop; only merge-newcomers + state-sync touch them.")
		}
	}
	fmt.Print("\nepoch losses:")
	for _, l := range res.LossHistory {
		fmt.Printf(" %.4f", l)
	}
	fmt.Println()
}
