// Resilient solver: the resilient collective operations are not specific
// to deep learning. This example runs a distributed power iteration (the
// dominant-eigenvalue solver behind PageRank-style computations) on the
// ulfm.ResilientComm library and kills a worker mid-solve: the collective
// repairs itself, the survivors redistribute the rows, and the iteration
// converges to the same eigenvalue.
//
// Run with:
//
//	go run ./examples/resilientsolver
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/ulfm"
)

const (
	n       = 64 // matrix dimension
	workers = 4
	iters   = 60
	killAt  = 20 // iteration at which worker 3 dies
)

// matRow returns row i of a fixed symmetric positive matrix with a known
// dominant eigenvector (diagonally dominant, deterministic).
func matRow(i int) []float64 {
	row := make([]float64, n)
	for j := 0; j < n; j++ {
		row[j] = 1.0 / float64(1+abs(i-j))
	}
	row[i] += 2
	return row
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	cluster := simnet.New(simnet.Config{
		Nodes: workers, ProcsPerNode: 1,
		IntraNodeLatency: 1.5e-6, InterNodeLatency: 3e-6,
		IntraNodeBandwidth: 50e9, InterNodeBandwidth: 4e9,
		PerMessageOverhead: 1e-6, DetectLatency: 2e-3, SpawnDelay: 1,
	})
	procs := cluster.Procs()

	var mu sync.Mutex
	var eig []float64
	var repairs int

	var ready sync.WaitGroup
	ready.Add(workers)
	errs := simnet.RunAll(cluster, procs, func(rank int, ep *simnet.Endpoint) error {
		p := mpi.Attach(ep)
		comm, err := mpi.World(p, procs)
		if err != nil {
			return err
		}
		r := ulfm.New(comm, cluster, ulfm.DefaultPolicy())

		// x starts as the all-ones vector, replicated everywhere.
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		var lambda float64
		for it := 0; it < iters; it++ {
			if it == killAt {
				ready.Done()
				ready.Wait()
				if rank == workers-1 {
					cluster.Kill(ep.ID())
					return nil
				}
			}
			// Each live worker owns a deterministic slice of the rows;
			// after a repair the slices recompute from the new size, so
			// the lost worker's rows redistribute automatically.
			y := make([]float64, n)
			lo := r.Rank() * n / r.Size()
			hi := (r.Rank() + 1) * n / r.Size()
			for i := lo; i < hi; i++ {
				row := matRow(i)
				var s float64
				for j := 0; j < n; j++ {
					s += row[j] * x[j]
				}
				y[i] = s
			}
			// Resilient allreduce assembles the full y at every worker —
			// if someone died, the repair shrinks the communicator and
			// the iteration continues with redistributed rows.
			if err := ulfm.Allreduce(r, y, mpi.OpSum); err != nil {
				return fmt.Errorf("rank %d iter %d: %w", rank, it, err)
			}
			// Rayleigh quotient and normalization (replicated math).
			var num, den float64
			for i := 0; i < n; i++ {
				num += x[i] * y[i]
				den += x[i] * x[i]
			}
			lambda = num / den
			var norm float64
			for _, v := range y {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			for i := range y {
				y[i] /= norm
			}
			x = y
		}
		mu.Lock()
		eig = append(eig, lambda)
		repairs = len(r.Events())
		mu.Unlock()
		return nil
	})
	if err := simnet.FirstError(errs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("power iteration over a %dx%d matrix on %d workers, worker %d killed at iteration %d\n",
		n, n, workers, workers-1, killAt)
	fmt.Printf("repairs performed: %d\n", repairs)
	same := true
	for _, l := range eig[1:] {
		if math.Abs(l-eig[0]) > 1e-9 {
			same = false
		}
	}
	fmt.Printf("survivors agree on the dominant eigenvalue: %v (lambda = %.6f)\n", same, eig[0])

	// Cross-check against a serial power iteration.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var lambda float64
	for it := 0; it < iters; it++ {
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := matRow(i)
			for j := 0; j < n; j++ {
				y[i] += row[j] * x[j]
			}
		}
		var num, den, norm float64
		for i := 0; i < n; i++ {
			num += x[i] * y[i]
			den += x[i] * x[i]
			norm += y[i] * y[i]
		}
		lambda = num / den
		norm = math.Sqrt(norm)
		for i := range y {
			y[i] /= norm
		}
		x = y
	}
	fmt.Printf("serial reference lambda = %.6f (delta %.2e)\n", lambda, math.Abs(lambda-eig[0]))
}
