// Autoscale (the paper's Scenario III): start training with the workers
// that are available and absorb new resources as they come online,
// doubling the worker count mid-run. Compares how the two stacks pay for
// the expansion: Elastic Horovod interrupts everyone with a full reset +
// re-rendezvous; ULFM merges the newcomers at an epoch boundary while
// training continues.
//
// Run with:
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/models"
)

func main() {
	fmt.Println("Scenario III: double the workers of a NasNetMobile run at every scale")
	fmt.Println()
	fmt.Printf("%8s  %22s  %22s\n", "GPUs", "Elastic Horovod (s)", "ULFM MPI (s)")
	for _, gpus := range []int{12, 24, 48} {
		eh, err := experiments.Run(experiments.DefaultSetup(
			models.NasNetMobile, gpus, "up", experiments.StackElasticHorovod, failure.KillNode))
		if err != nil {
			log.Fatal(err)
		}
		ul, err := experiments.Run(experiments.DefaultSetup(
			models.NasNetMobile, gpus, "up", experiments.StackULFM, failure.KillNode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %22.3f  %22.3f   (%d -> %d workers)\n",
			gpus, eh.Total, ul.Total, gpus, eh.FinalSize)
	}
	fmt.Println()
	fmt.Println("Both stacks pay the same one-time software init on the new workers;")
	fmt.Println("the difference is the reconfiguration of the existing ones.")
}
