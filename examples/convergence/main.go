// Convergence: show that elastic training with resilient collectives
// keeps learning through failures and joins. Trains the same task three
// ways — failure-free, with a mid-training failure (downscale), and with
// a mid-training upscale — and prints the three loss trajectories, plus a
// replica-consistency check after every reconfiguration.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/simnet"
	"repro/internal/train"
)

func run(sched *failure.Schedule, scenario core.Scenario) *core.Result {
	cluster := simnet.New(simnet.Config{
		Nodes:              2,
		ProcsPerNode:       3,
		IntraNodeLatency:   1.5e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      2e-3,
		SpawnDelay:         1,
	})
	cfg := core.Config{
		Train: train.Config{
			Mode:       train.Real,
			MLPSizes:   []int{8, 32, 4},
			Seed:       9,
			Dataset:    data.NewSynthetic(600, 8, 4, 21),
			BatchSize:  10,
			Epochs:     10,
			BaseLR:     0.05,
			Momentum:   0.9,
			RefWorkers: 6,
			// Warmup smooths the LR transition after resizes.
			WarmupSteps: 10,
		},
		Horovod:    horovod.DefaultConfig(),
		Scenario:   scenario,
		DropPolicy: failure.KillProcess,
		Schedule:   sched,
	}
	job, err := core.NewJob(cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	baseline := run(failure.None(), core.ScenarioDown)
	failed := run(failure.At(4, 1, 2, failure.KillProcess), core.ScenarioDown)
	grown := run(failure.GrowAt(4, 1, 6), core.ScenarioUp)

	fmt.Println("epoch losses (rank 0):")
	fmt.Printf("%8s %12s %14s %14s\n", "epoch", "no events", "failure@ep4", "upscale@ep4")
	n := len(baseline.LossHistory)
	for i := 0; i < n; i++ {
		get := func(h []float64) string {
			if i < len(h) {
				return fmt.Sprintf("%.4f", h[i])
			}
			return "-"
		}
		fmt.Printf("%8d %12s %14s %14s\n", i, get(baseline.LossHistory), get(failed.LossHistory), get(grown.LossHistory))
	}

	check := func(name string, res *core.Result) {
		var h uint64
		same := true
		for _, hash := range res.FinalHashes {
			if h == 0 {
				h = hash
			} else if hash != h {
				same = false
			}
		}
		fmt.Printf("%-12s final workers=%d, replicas consistent=%v, final loss=%.4f\n",
			name, res.FinalSize, same, res.LossHistory[len(res.LossHistory)-1])
	}
	fmt.Println()
	check("baseline", baseline)
	check("failure", failed)
	check("upscale", grown)
}
