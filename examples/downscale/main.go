// Downscale (the paper's Scenario I) head-to-head: the same single-GPU
// failure during ResNet-50 training on 24 simulated GPUs, recovered by
// Elastic Horovod (checkpoint rollback + Gloo re-rendezvous, node
// blacklisting) and by ULFM resilient collectives (revoke / agree /
// shrink / retry, process-granular). Prints both Figure-4-style cost
// breakdowns side by side.
//
// Run with:
//
//	go run ./examples/downscale
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/models"
)

func main() {
	eh, err := experiments.Run(experiments.DefaultSetup(
		models.ResNet50V2, 24, "down", experiments.StackElasticHorovod, failure.KillProcess))
	if err != nil {
		log.Fatal(err)
	}
	ul, err := experiments.Run(experiments.DefaultSetup(
		models.ResNet50V2, 24, "down", experiments.StackULFM, failure.KillProcess))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scenario I: one GPU fails during ResNet-50 training on 24 GPUs")
	fmt.Println()
	fmt.Printf("Elastic Horovod (drops the whole node, %d GPUs left):\n  %s\n\n",
		eh.FinalSize, eh.Critical)
	fmt.Printf("ULFM resilient collectives (drops one process, %d GPUs left):\n  %s\n\n",
		ul.FinalSize, ul.Critical)

	t := &metrics.Table{
		Title:   "Cost segments (seconds)",
		Headers: []string{"segment", "Elastic Horovod", "ULFM MPI", "speedup"},
	}
	seg := func(name string, a, b float64) {
		sp := "-"
		if b > 0 {
			sp = fmt.Sprintf("%.1fx", a/b)
		}
		t.AddRow(name, fmt.Sprintf("%.3f", a), fmt.Sprintf("%.3f", b), sp)
	}
	seg("communicator reconstruction", eh.Reconstruct, ul.Reconstruct)
	seg("state re-initialization", eh.StateInit, ul.StateInit)
	seg("re-computation", eh.Recompute, ul.Recompute)
	seg("TOTAL", eh.Total, ul.Total)
	fmt.Println(t)
}
