// Quickstart: train a small model data-parallel on a simulated cluster
// with ULFM resilient collectives, survive a worker failure mid-epoch,
// and verify that every replica ends bitwise identical.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/failure"
	"repro/internal/horovod"
	"repro/internal/simnet"
	"repro/internal/train"
)

func main() {
	// A 2-node cluster with 3 workers per node (think: 3 GPUs per node).
	cluster := simnet.New(simnet.Config{
		Nodes:              2,
		ProcsPerNode:       3,
		IntraNodeLatency:   1.5e-6,
		InterNodeLatency:   3e-6,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 4e9,
		DetectLatency:      2e-3,
		SpawnDelay:         2,
	})

	cfg := core.Config{
		Train: train.Config{
			Mode:       train.Real,
			MLPSizes:   []int{8, 32, 4}, // a genuinely trainable MLP
			Seed:       42,
			Dataset:    data.NewSynthetic(600, 8, 4, 7), // synthetic classification task
			BatchSize:  10,
			Epochs:     6,
			BaseLR:     0.05,
			Momentum:   0.9,
			RefWorkers: 6,
		},
		Horovod:    horovod.DefaultConfig(),
		Scenario:   core.ScenarioDown,                        // continue with survivors
		DropPolicy: failure.KillProcess,                      // drop just the failed process
		Schedule:   failure.At(2, 1, 4, failure.KillProcess), // rank 4 dies at epoch 2, step 1
	}

	job, err := core.NewJob(cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workers: started 6, finished %d\n", res.FinalSize)
	fmt.Printf("virtual training time: %.2fs\n", res.TotalTime)
	fmt.Print("epoch losses:")
	for _, l := range res.LossHistory {
		fmt.Printf(" %.4f", l)
	}
	fmt.Println()
	for _, ev := range res.Events {
		fmt.Printf("recovery event: %s\n", ev.Critical)
	}

	// Every surviving replica must hold the identical model state.
	var h uint64
	same := true
	for _, hash := range res.FinalHashes {
		if h == 0 {
			h = hash
		} else if hash != h {
			same = false
		}
	}
	fmt.Printf("replicas consistent after recovery: %v\n", same)
}
