// Package clean trips none of the suite's analyzers: the standalone
// exit-0 path of the main_test fixture.
package clean

// Add is here so the package has a statement to type-check.
func Add(a, b int) int { return a + b }
