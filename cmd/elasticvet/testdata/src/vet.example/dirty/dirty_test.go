package dirty

import (
	"testing"
	"time"
)

// TestSleeps carries a deliberate sleepytest violation: main_test uses
// it to pin standalone mode's exit-2 path and to prove the loader
// reaches test variants (this finding only exists in a _test.go file).
func TestSleeps(t *testing.T) {
	time.Sleep(time.Millisecond)
}
