module vet.example

go 1.22
