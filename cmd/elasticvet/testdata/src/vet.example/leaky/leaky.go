// Package leaky carries a deliberate goroleak violation in a non-test
// file: main_test builds a vet.cfg for this package to pin the
// unitchecker path end to end.
package leaky

// Spawn starts a worker with no shutdown tie.
func Spawn() {
	go func() {
		for {
		}
	}()
}
