// Command elasticvet is the multichecker for the repository's
// fault-tolerance invariants. It bundles the internal/analysis suite —
// boundedwait, framepool, goroleak, hookpoint, lockhold, mpierrcmp,
// obsinit, rawrelease, sleepytest — behind the two interfaces a Go
// toolchain expects:
//
// Standalone, over one or more package patterns:
//
//	go build -o bin/elasticvet ./cmd/elasticvet
//	bin/elasticvet ./...
//
// As a go vet tool, which lets the go command drive it incrementally
// through the build cache:
//
//	go vet -vettool=$(pwd)/bin/elasticvet ./...
//
// In vettool mode the go command invokes the binary once per package
// with a JSON "vet.cfg" describing the compilation unit (files, import
// map, export data of dependencies), plus the protocol queries -V=full
// (tool identity for cache keying) and -flags (supported flags). Exit
// status 2 means diagnostics were reported, mirroring go vet itself.
//
// Diagnostics are suppressed by a justified directive on or immediately
// above the flagged line:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare directive is ignored.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/boundedwait"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/framepool"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hookpoint"
	"repro/internal/analysis/lockhold"
	"repro/internal/analysis/mpierrcmp"
	"repro/internal/analysis/obsinit"
	"repro/internal/analysis/rawrelease"
	"repro/internal/analysis/sleepytest"
)

// suite is every analyzer elasticvet runs, in diagnostic-prefix order.
var suite = []*analysis.Analyzer{
	boundedwait.Analyzer,
	framepool.Analyzer,
	goroleak.Analyzer,
	hookpoint.Analyzer,
	lockhold.Analyzer,
	mpierrcmp.Analyzer,
	obsinit.Analyzer,
	rawrelease.Analyzer,
	sleepytest.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("elasticvet", flag.ContinueOnError)
	fs.Usage = usage
	versionFlag := fs.String("V", "", "print version (go vet protocol: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print supported flags as JSON (go vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	dirFlag := fs.String("dir", ".", "directory to load packages from (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		return printVersion(*versionFlag)
	case *flagsFlag:
		// The go command interrogates supported flags before use; the
		// suite is not configurable, so advertise none.
		fmt.Println("[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], *jsonFlag)
	}
	return standalone(*dirFlag, rest, *jsonFlag)
}

func usage() {
	fmt.Fprintf(os.Stderr, `elasticvet: static checks for the elastic collectives stack

usage:
  elasticvet [-dir d] [-json] [packages]     analyze package patterns (default ./...)
  go vet -vettool=$(command -v elasticvet) ./...

analyzers:
`)
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Summary())
	}
}

// printVersion implements the -V protocol: the go command derives the
// tool's build-cache identity from this line and requires the form
// "<name> version <details...>".
func printVersion(mode string) int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:8])
		}
	}
	if mode == "full" {
		fmt.Printf("elasticvet version devel buildID=%s\n", id)
	} else {
		fmt.Println("elasticvet version devel")
	}
	return 0
}

// standalone loads patterns with the go-list driver and reports.
func standalone(dir string, patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := driver.Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
		return 1
	}
	findings, err := driver.Run(units, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
		return 1
	}
	return report(findings, asJSON)
}

// vetConfig is the compilation-unit description the go command hands a
// vet tool (the "vet.cfg" file). Field names follow the go command's
// JSON exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single compilation unit described by cfgPath.
func unitcheck(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command expects a facts file regardless of the outcome; the
	// suite keeps no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := driver.TypeCheck(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "elasticvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	unit := &driver.Unit{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	findings, err := driver.Run([]*driver.Unit{unit}, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
		return 1
	}
	return report(findings, asJSON)
}

// report prints findings and returns the process exit code: 0 clean,
// 2 diagnostics (go vet convention).
func report(findings []driver.Finding, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "elasticvet: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
