package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/driver"
)

// capture runs f with os.Stdout and os.Stderr redirected and returns
// what f wrote to each. Pipes are drained concurrently so large
// findings lists cannot deadlock against the pipe buffer.
func capture(t *testing.T, f func()) (stdout, stderr string) {
	t.Helper()
	redirect := func(target **os.File) func() string {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		prev := *target
		*target = w
		out := make(chan string, 1)
		go func() {
			b, _ := io.ReadAll(r)
			out <- string(b)
		}()
		return func() string {
			w.Close()
			*target = prev
			return <-out
		}
	}
	getOut := redirect(&os.Stdout)
	getErr := redirect(&os.Stderr)
	f()
	return getOut(), getErr()
}

// TestVersionProtocol pins the -V handshake the go command keys its
// build cache on: the full form must be "<name> version <details...>"
// with a stable buildID derived from the binary.
func TestVersionProtocol(t *testing.T) {
	var code int
	out, _ := capture(t, func() { code = run([]string{"-V=full"}) })
	if code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
	if !regexp.MustCompile(`^elasticvet version devel buildID=[0-9a-f]+\n$`).MatchString(out) {
		t.Errorf("-V=full output %q does not match the vet protocol form", out)
	}
	out, _ = capture(t, func() { code = run([]string{"-V=short"}) })
	if code != 0 || out != "elasticvet version devel\n" {
		t.Errorf("run(-V=short) = %d, %q", code, out)
	}
}

// TestFlagsProtocol pins the -flags interrogation: the suite is not
// configurable, so the advertised flag set is empty.
func TestFlagsProtocol(t *testing.T) {
	var code int
	out, _ := capture(t, func() { code = run([]string{"-flags"}) })
	if code != 0 || out != "[]\n" {
		t.Errorf("run(-flags) = %d, %q; want 0, %q", code, out, "[]\n")
	}
}

// TestStandaloneClean pins the exit-0 path over a package that trips
// no analyzer.
func TestStandaloneClean(t *testing.T) {
	var code int
	_, errOut := capture(t, func() {
		code = run([]string{"-dir", "testdata/src/vet.example", "./clean/..."})
	})
	if code != 0 {
		t.Fatalf("clean fixture exited %d: %s", code, errOut)
	}
}

// TestStandaloneFindings pins the exit-2 path AND that standalone mode
// reaches test variants: the fixture's only violation lives in a
// _test.go file.
func TestStandaloneFindings(t *testing.T) {
	var code int
	_, errOut := capture(t, func() {
		code = run([]string{"-dir", "testdata/src/vet.example", "./..."})
	})
	if code != 2 {
		t.Fatalf("dirty fixture exited %d, want 2; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "dirty_test.go") || !strings.Contains(errOut, "(sleepytest)") {
		t.Errorf("stderr %q does not carry the test-variant sleepytest finding", errOut)
	}
}

// TestStandaloneJSON pins the -json output contract: a machine-readable
// findings array on stdout, still exit 2.
func TestStandaloneJSON(t *testing.T) {
	var code int
	out, _ := capture(t, func() {
		code = run([]string{"-json", "-dir", "testdata/src/vet.example", "./..."})
	})
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	var findings []driver.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("stdout is not a findings array: %v\n%s", err, out)
	}
	if len(findings) == 0 || findings[0].Analyzer != "sleepytest" {
		t.Errorf("JSON findings %v, want one sleepytest entry", findings)
	}
}

// TestUnitcheck pins the go vet vettool path: a vet.cfg describing one
// compilation unit, the mandatory (empty) facts file, and exit 2 for a
// diagnostic in a non-test file.
func TestUnitcheck(t *testing.T) {
	tmp := t.TempDir()
	cfg := vetConfig{
		ID:         "vet.example/leaky",
		Compiler:   "gc",
		Dir:        "testdata/src/vet.example/leaky",
		ImportPath: "vet.example/leaky",
		GoFiles:    []string{"leaky.go"},
		VetxOutput: filepath.Join(tmp, "leaky.vetx"),
	}
	writeCfg := func(c vetConfig) string {
		t.Helper()
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(tmp, "vet.cfg")
		if err := os.WriteFile(path, b, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	var code int
	_, errOut := capture(t, func() { code = run([]string{writeCfg(cfg)}) })
	if code != 2 {
		t.Fatalf("unitcheck exited %d, want 2; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "(goroleak)") {
		t.Errorf("stderr %q does not carry the goroleak finding", errOut)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts file not written: %v", err)
	}

	// VetxOnly runs ask for facts alone; no analysis, no findings.
	cfg.VetxOnly = true
	capture(t, func() { code = run([]string{writeCfg(cfg)}) })
	if code != 0 {
		t.Errorf("VetxOnly unitcheck exited %d, want 0", code)
	}
}

// TestBadFlag pins argument errors to exit 1, not a crash.
func TestBadFlag(t *testing.T) {
	var code int
	capture(t, func() { code = run([]string{"-no-such-flag"}) })
	if code != 1 {
		t.Errorf("run(-no-such-flag) = %d, want 1", code)
	}
}
