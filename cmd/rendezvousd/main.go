// Command rendezvousd runs the standalone rendezvous/membership service
// for multi-process elastic runs: it gathers -world workers, assigns
// ranks, publishes the peer address map, and runs heartbeat failure
// detection, broadcasting declarations to the survivors.
//
//	rendezvousd -listen :7777 -world 4
//
// Workers (cmd/elasticd) point at it with -rendezvous host:7777. The
// same service can instead be run inline by the rank-0 worker with
// `elasticd -serve`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rendezvous"
	"repro/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "address to listen on")
	world := flag.Int("world", 4, "workers to gather before publishing the peer map")
	hb := flag.Duration("hb", 500*time.Millisecond, "heartbeat interval workers are told to use")
	suspect := flag.Duration("suspect", 0, "silence before suspicion (default 3x hb)")
	dead := flag.Duration("dead", 0, "silence before declaration (default 6x hb)")
	gossipMode := flag.Bool("gossip", false, "SWIM gossip mode: no heartbeats, failure verdicts arrive from workers, membership changes publish as versioned deltas")
	tracePath := flag.String("trace", "", "write a JSON-lines membership journal to this file")
	obsListen := flag.String("obs.listen", "", "serve /metrics, /healthz, /varz on this address (empty = no metrics endpoint)")
	flag.Parse()

	// Buffered journal: flushed on the signal exit below and on fatal
	// startup errors, never dropped on the floor.
	jn, err := trace.OpenJournal(*tracePath)
	if err != nil {
		log.Fatalf("rendezvousd: %v", err)
	}
	defer jn.Close()
	rec := jn.Recorder()

	// Resolved addresses go to stdout (scripts launching with ":0" read
	// them there) and into the journal, so a run's artifacts record where
	// it actually listened.
	obsAddr := ""
	if *obsListen != "" {
		osrv, oerr := obs.Serve(*obsListen, nil)
		if oerr != nil {
			jn.Close()
			log.Fatalf("rendezvousd: %v", oerr)
		}
		defer osrv.Close()
		obsAddr = osrv.Addr()
		fmt.Printf("rendezvousd: metrics on http://%s/metrics\n", obsAddr)
	}

	srv, err := rendezvous.ListenAndServe(*listen, rendezvous.Config{
		World:             *world,
		HeartbeatInterval: *hb,
		SuspectAfter:      *suspect,
		DeadAfter:         *dead,
		Gossip:            *gossipMode,
		Trace:             rec,
		Logf:              log.Printf,
	})
	if err != nil {
		jn.Close()
		log.Fatalf("rendezvousd: %v", err)
	}
	fmt.Printf("rendezvousd: listening on %s, gathering %d workers\n", srv.Addr(), *world)
	rec.Membership(0, -1, "listen", map[string]any{"addr": srv.Addr(), "obs": obsAddr})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	jn.Close()
}
