// Command benchgate compares a freshly measured data-plane report
// against the committed baseline (BENCH_dataplane.json) and fails if any
// matched cell regressed in ns/op beyond the tolerance. It gates the raw
// wire codec and the loopback TCP allreduce — the two data-plane numbers
// the paper's throughput claims rest on — while ignoring cells present
// in only one report (new sizes or algorithms don't break the gate).
//
//	benchtab -dataplane fresh.json -benchtime 3x
//	benchgate -baseline BENCH_dataplane.json -fresh fresh.json -tolerance 0.30
//
// The tolerance is deliberately loose: CI runners are noisy and the gate
// exists to catch step-change regressions (an accidental gob fallback, a
// lost pipelining path), not single-digit drift.
//
// With -controlplane, the reports are instead gossip control-plane
// measurements (BENCH_controlplane.json): membership-convergence and
// kill-detection latencies on the deterministic simulator. Those numbers
// carry no host noise at all, so the tolerance there can be tight.
//
//	benchtab -controlplane fresh_cp.json
//	benchgate -controlplane -baseline BENCH_controlplane.json -fresh fresh_cp.json -tolerance 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
)

func main() {
	basePath := flag.String("baseline", "BENCH_dataplane.json", "committed baseline report")
	freshPath := flag.String("fresh", "", "freshly measured report to gate (required)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression (0.30 = +30%)")
	minNs := flag.Float64("min-ns", 50_000, "skip cells whose baseline is below this many ns/op (too noise-dominated at CI iteration counts to gate)")
	gobToo := flag.Bool("gob", false, "also gate the gob-codec cells (off: the legacy envelope may drift)")
	pipeSlack := flag.Float64("pipelined-slack", 0.10, "allowed fractional ns/op excess of raw pipelined over raw ring at the same size (the pipelined floor: chunking must never lose to the plain ring)")
	minMBps := flag.Float64("min-mbps", 0, "required MB/s for the largest raw pipelined allreduce row in the fresh report (0 = off)")
	cp := flag.Bool("controlplane", false, "gate gossip control-plane reports instead of data-plane reports")
	maxDecisionUS := flag.Float64("max-decision-us", 0, "with -controlplane: absolute ceiling on the fresh policy_decision_us rows (0 = off; the one wall-clock number in the report, so it gates on a ceiling, not a diff)")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	if *cp {
		gateControlplane(*basePath, *freshPath, *tolerance, *maxDecisionUS)
		return
	}

	base, err := load(*basePath)
	check(err)
	fresh, err := load(*freshPath)
	check(err)

	failures := 0
	compared := 0
	report := func(kind, key string, baseNs, freshNs float64) {
		if baseNs < *minNs {
			fmt.Printf("%-12s %-40s %12.0f ns/op baseline below noise floor, skipped\n", kind, key, baseNs)
			return
		}
		compared++
		ratio := freshNs / baseNs
		status := "ok"
		if ratio > 1+*tolerance {
			status = "REGRESSION"
			failures++
		}
		fmt.Printf("%-12s %-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			kind, key, baseNs, freshNs, (ratio-1)*100, status)
	}

	for _, b := range base.Codec {
		if b.Codec == "gob" && !*gobToo {
			continue
		}
		for _, f := range fresh.Codec {
			if f.Payload == b.Payload && f.Codec == b.Codec {
				report("codec", fmt.Sprintf("%s/%s", b.Payload, b.Codec), b.NsPerOp, f.NsPerOp)
			}
		}
	}
	for _, b := range base.TCPAllreduce {
		if b.Codec == "gob" && !*gobToo {
			continue
		}
		for _, f := range fresh.TCPAllreduce {
			if f.TensorBytes == b.TensorBytes && f.Algo == b.Algo && f.Codec == b.Codec {
				report("allreduce", fmt.Sprintf("%dB/%s/%s", b.TensorBytes, b.Algo, b.Codec), b.NsPerOp, f.NsPerOp)
			}
		}
	}

	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable cells between baseline and fresh report")
		os.Exit(1)
	}
	failures += gateInvariants(fresh, *pipeSlack, *minMBps)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d cells regressed more than %.0f%% (or violated a data-plane invariant)\n",
			failures, compared, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d cells within %.0f%% of baseline\n", compared, *tolerance*100)
}

// gateInvariants checks properties of the fresh report alone — claims the
// data plane makes about itself, independent of any baseline drift:
//
//   - the pipelined floor: at every tensor size measured, the raw
//     pipelined row must not exceed the raw ring row's ns/op by more
//     than pipeSlack (the chunk-count heuristic degrades pipelining to
//     the plain ring rather than paying chunk overhead it can't win back);
//   - compression really compresses: every fp16 row must move fewer
//     wire bytes than the raw row with the same schedule and size
//     (at most ~half plus framing, gated loosely at 0.75x);
//   - optionally, an absolute throughput floor for the headline cell
//     (largest raw pipelined row), for CI hosts with known capability.
//
// Returns the number of violations, each printed in the cell format of
// the regression report.
func gateInvariants(fresh *dataplane.Report, pipeSlack, minMBps float64) int {
	type cellKey struct {
		bytes int64
		algo  string
		codec string
	}
	cells := make(map[cellKey]dataplane.AllreduceResult, len(fresh.TCPAllreduce))
	for _, c := range fresh.TCPAllreduce {
		cells[cellKey{c.TensorBytes, c.Algo, c.Codec}] = c
	}

	failures := 0
	sizes := map[int64]bool{}
	for _, c := range fresh.TCPAllreduce {
		sizes[c.TensorBytes] = true
	}
	for bytes := range sizes {
		ring, okR := cells[cellKey{bytes, "ring", "raw"}]
		pipe, okP := cells[cellKey{bytes, "pipelined", "raw"}]
		if okR && okP {
			ratio := pipe.NsPerOp / ring.NsPerOp
			status := "ok"
			if ratio > 1+pipeSlack {
				status = "FLOOR VIOLATION"
				failures++
			}
			fmt.Printf("%-12s %-40s %12.0f vs %12.0f ns/op  %+6.1f%%  %s\n",
				"pipe-floor", fmt.Sprintf("%dB pipelined-vs-ring/raw", bytes),
				pipe.NsPerOp, ring.NsPerOp, (ratio-1)*100, status)
		}
	}

	fp16Seen := false
	for key, c := range cells {
		if key.codec != "fp16" {
			continue
		}
		raw, ok := cells[cellKey{key.bytes, key.algo, "raw"}]
		if !ok {
			continue
		}
		fp16Seen = true
		status := "ok"
		if c.WireBytes <= 0 || raw.WireBytes <= 0 ||
			float64(c.WireBytes) > 0.75*float64(raw.WireBytes) {
			status = "NO WIRE REDUCTION"
			failures++
		}
		fmt.Printf("%-12s %-40s %12d vs %12d wire B/op          %s\n",
			"fp16-wire", fmt.Sprintf("%dB %s/fp16-vs-raw", key.bytes, key.algo),
			c.WireBytes, raw.WireBytes, status)
	}
	if !fp16Seen {
		fmt.Fprintln(os.Stderr, "benchgate: fresh report has no fp16 allreduce row with a matching raw row")
		failures++
	}

	if minMBps > 0 {
		var head dataplane.AllreduceResult
		for _, c := range fresh.TCPAllreduce {
			if c.Algo == "pipelined" && c.Codec == "raw" && c.TensorBytes > head.TensorBytes {
				head = c
			}
		}
		if head.TensorBytes == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: -min-mbps set but fresh report has no raw pipelined row")
			failures++
		} else {
			status := "ok"
			if head.MBPerSec < minMBps {
				status = "BELOW FLOOR"
				failures++
			}
			fmt.Printf("%-12s %-40s %12.1f MB/s (floor %.1f)  %s\n",
				"throughput", fmt.Sprintf("%dB pipelined/raw", head.TensorBytes),
				head.MBPerSec, minMBps, status)
		}
	}
	return failures
}

// gateControlplane diffs two controlplane.Report documents: every world
// present in both is compared on join-convergence and kill-detection
// latency. The measurements are virtual-time deterministic, so any
// regression beyond the tolerance is an algorithmic change in the SWIM
// layer, not runner noise.
func gateControlplane(basePath, freshPath string, tolerance, maxDecisionUS float64) {
	base, err := loadControlplane(basePath)
	check(err)
	fresh, err := loadControlplane(freshPath)
	check(err)

	failures := 0
	compared := 0
	report := func(key string, baseMS, freshMS float64) {
		compared++
		ratio := freshMS / baseMS
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			failures++
		}
		fmt.Printf("%-40s %10.1f -> %10.1f ms  %+6.1f%%  %s\n",
			key, baseMS, freshMS, (ratio-1)*100, status)
	}
	// Throughput rows gate downward: fresh below baseline by more than
	// the tolerance is the regression (the capped stream got slower).
	reportThroughput := func(key string, baseMBps, freshMBps float64) {
		compared++
		ratio := freshMBps / baseMBps
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSION"
			failures++
		}
		fmt.Printf("%-40s %10.1f -> %10.1f MB/s %+6.1f%%  %s\n",
			key, baseMBps, freshMBps, (ratio-1)*100, status)
	}
	for _, b := range base.Cells {
		for _, f := range fresh.Cells {
			if f.World != b.World {
				continue
			}
			report(fmt.Sprintf("join-converge/world=%d", b.World), b.JoinConvergeMS, f.JoinConvergeMS)
			report(fmt.Sprintf("kill-detect/world=%d", b.World), b.KillDetectMS, f.KillDetectMS)
			// Baselines written before the autopilot rows existed carry
			// zeros here; like cells present in only one report, they
			// don't break the gate.
			if b.SpareSwapRecoveryMS > 0 {
				report(fmt.Sprintf("spare-swap-recovery/world=%d", b.World), b.SpareSwapRecoveryMS, f.SpareSwapRecoveryMS)
			}
			if b.StateXferMBps > 0 {
				reportThroughput(fmt.Sprintf("state-transfer-throughput/world=%d", b.World), b.StateXferMBps, f.StateXferMBps)
			}
			// The regret row is deterministic EWMA arithmetic, so it
			// diffs exactly; zero baselines (reports predating the
			// policy engine) skip it like the autopilot rows above.
			if b.PolicyRegretPct > 0 {
				compared++
				ratio := f.PolicyRegretPct / b.PolicyRegretPct
				status := "ok"
				if ratio > 1+tolerance {
					status = "REGRESSION"
					failures++
				}
				fmt.Printf("%-40s %10.2f -> %10.2f %%   %+6.1f%%  %s\n",
					fmt.Sprintf("policy-regret/world=%d", b.World),
					b.PolicyRegretPct, f.PolicyRegretPct, (ratio-1)*100, status)
			}
			// The decision-latency row is wall clock — the only such
			// number in a control-plane report — so relative gating
			// would just measure the runner. An absolute ceiling still
			// catches an accidental O(world²) scan or allocation storm.
			if maxDecisionUS > 0 && f.PolicyDecisionUS > 0 {
				compared++
				status := "ok"
				if f.PolicyDecisionUS > maxDecisionUS {
					status = "ABOVE CEILING"
					failures++
				}
				fmt.Printf("%-40s %10.2f us/op (ceiling %.0f)  %s\n",
					fmt.Sprintf("policy-decision/world=%d", f.World),
					f.PolicyDecisionUS, maxDecisionUS, status)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no comparable cells between baseline and fresh report")
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d control-plane cells regressed more than %.0f%%\n",
			failures, compared, tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d control-plane cells within %.0f%% of baseline\n", compared, tolerance*100)
}

func loadControlplane(path string) (*controlplane.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep controlplane.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func load(path string) (*dataplane.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep dataplane.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}
