// Command elasticd is a multi-process elastic worker: it joins a
// rendezvous service, opens a real TCP transport endpoint, builds the
// world communicator, and runs a loop of resilient allreduces that
// survives the abrupt death (kill -9) of other workers via the same
// ULFM revoke/agree/shrink/retry pipeline the simulator exercises.
//
// Quickstart on one machine (four terminals, or background jobs):
//
//	elasticd -serve -rendezvous 127.0.0.1:7777 -world 4   # rank 0, hosts the service
//	elasticd -rendezvous 127.0.0.1:7777                   # three more workers
//	elasticd -rendezvous 127.0.0.1:7777
//	elasticd -rendezvous 127.0.0.1:7777
//
// Then kill -9 any non-serving worker and watch the survivors shrink
// and keep stepping with the reduced sum.
//
// With -scale-policy and warm spares the world heals instead of
// shrinking: start the workers with `-scale-policy swap`, add
// `-spare -scale-policy swap` processes, and a kill -9 is absorbed by
// the autopilot swapping a spare in at the next step boundary — the
// newcomer receives the model state over a bandwidth-capped stream and
// enters at the following step with the world back at full size.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/rendezvous"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/chaos"
	"repro/internal/transport/tcpnet"
	"repro/internal/ulfm"
)

func main() {
	rdv := flag.String("rendezvous", "127.0.0.1:7777", "rendezvous service address")
	listen := flag.String("listen", "127.0.0.1:0", "transport listen address (port 0 = ephemeral)")
	serve := flag.Bool("serve", false, "also host the rendezvous service on the -rendezvous address")
	world := flag.Int("world", 4, "world size to gather (used with -serve)")
	steps := flag.Int("steps", 30, "allreduce steps to run")
	n := flag.Int("n", 1024, "elements per allreduce")
	stepInterval := flag.Duration("step-interval", time.Second, "pause between steps (gives humans time to kill workers)")
	algoName := flag.String("allreduce", "auto", "allreduce algorithm: auto, ring, recdouble, hier, or pipelined")
	chunks := flag.Int("chunks", 0, "pipelined-ring chunk count (0 = size-derived)")
	codecName := flag.String("codec", "raw", "gradient wire codec: raw, fp16, or int8")
	hb := flag.Duration("hb", 500*time.Millisecond, "heartbeat interval (used with -serve)")
	suspect := flag.Duration("suspect", 0, "suspicion threshold (used with -serve; default 3x hb)")
	dead := flag.Duration("dead", 0, "declaration threshold (used with -serve; default 6x hb)")
	spare := flag.Bool("spare", false, "join as a warm spare: register idle, wait for the autopilot to swap this process in, receive state, then train")
	spares := flag.Int("spares", 0, "wait for this many warm spares to register before training (demo choreography)")
	scalePolicy := flag.String("scale-policy", "", "enable the autopilot grow boundary: 'swap' (replace deaths from the spare pool) or a schedule like '10:+2,20:-1'; every worker and spare must pass the same value")
	policyMode := flag.String("policy", "", "enable the adaptive recovery-policy engine: auto (pick the predicted-cheapest strategy per failure), shrink, swap, or rollback (force one); every worker and spare must pass the same value — the advice exchange is a collective")
	xferRate := flag.Float64("xfer-rate", 64<<20, "newcomer state-transfer bandwidth cap in bytes/sec (0 = unlimited)")
	loadMetric := flag.String("load-metric", "", "obs metric sampled at every grow boundary as the load signal (counter/gauge by level, histogram by mean); enables load-driven scaling — every worker and spare must pass the same value, the target broadcast is a collective")
	loadHigh := flag.Float64("load-high", 0, "scale up by one worker when -load-metric reads above this (0 disables the high-water mark)")
	loadLow := flag.Float64("load-low", 0, "scale down by one worker when -load-metric reads below this")
	tracePath := flag.String("trace", "", "write a JSON-lines event journal to this file")
	obsListen := flag.String("obs.listen", "", "serve /metrics, /healthz, /varz on this address (empty = no metrics endpoint)")
	chaosName := flag.String("chaos", "", "inject faults from a named chaos scenario: "+chaosNames())
	chaosSeed := flag.Int64("chaos.seed", 1, "seed for the -chaos scenario (same seed = same fault schedule)")
	flag.Parse()

	algo, err := mpi.ParseAllreduceAlgo(*algoName)
	if err != nil {
		log.Fatalf("elasticd: %v", err)
	}
	codec, err := mpi.ParseWireCodec(*codecName)
	if err != nil {
		log.Fatalf("elasticd: %v", err)
	}
	opts := mpi.AllreduceOptions{Algo: algo, Chunks: *chunks, Codec: codec}

	if *spare && *scalePolicy == "" {
		// A spare runs the same boundaries as every member once admitted,
		// so it needs a policy; default to swap-only rather than deadlock.
		*scalePolicy = "swap"
		log.Printf("elasticd: -spare without -scale-policy, defaulting to 'swap'")
	}
	sched, elasticOn, err := parseScalePolicy(*scalePolicy)
	if err != nil {
		log.Fatalf("elasticd: %v", err)
	}
	// A load signal is a scale policy of its own: it enables the grow
	// boundary even without a schedule, so the autopilot can answer
	// sustained load with spares and shed them when it subsides.
	if *loadMetric != "" {
		elasticOn = true
	}

	// The journal is buffered, so every way out of this process must flush
	// it: the deferred close (normal completion and ErrDropped), fatalf
	// (fatal errors), the signal handler, and the chaos OnKill below. A
	// truncated journal would silently understate recovery behavior.
	jn, err := trace.OpenJournal(*tracePath)
	if err != nil {
		log.Fatalf("elasticd: %v", err)
	}
	defer jn.Close()
	rec := jn.Recorder()
	fatalf := func(format string, args ...any) {
		jn.Close()
		log.Fatalf(format, args...)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		log.Printf("elasticd: caught %v, flushing journal and exiting", s)
		jn.Close()
		if s == syscall.SIGTERM {
			os.Exit(143)
		}
		os.Exit(130)
	}()

	// Resolved addresses go to stdout (scripts launching with ":0" read
	// them there) and into the journal, so a run's artifacts record where
	// the process actually listened.
	obsAddr := ""
	if *obsListen != "" {
		osrv, err := obs.Serve(*obsListen, nil)
		if err != nil {
			fatalf("elasticd: %v", err)
		}
		defer osrv.Close()
		obsAddr = osrv.Addr()
		fmt.Printf("elasticd: metrics on http://%s/metrics\n", obsAddr)
	}

	if *serve {
		srv, err := rendezvous.ListenAndServe(*rdv, rendezvous.Config{
			World:             *world,
			HeartbeatInterval: *hb,
			SuspectAfter:      *suspect,
			DeadAfter:         *dead,
			Trace:             rec,
			Logf:              log.Printf,
		})
		if err != nil {
			fatalf("elasticd: %v", err)
		}
		defer srv.Close()
		log.Printf("elasticd: hosting rendezvous on %s for %d workers", srv.Addr(), *world)
	}

	// With -chaos, the endpoint is wrapped in a fault-injecting middleware:
	// data-plane faults via the endpoint wrapper, mid-frame connection
	// resets via the WrapConn hook. The self ProcID is only known after the
	// rendezvous welcome, so the conn hook reads it through an atomic the
	// join fills in (all dials happen after Start).
	var eng *chaos.Engine
	var selfProc atomic.Int64
	tcfg := tcpnet.Config{}
	if *chaosName != "" {
		sc, err := chaosScenario(*chaosName, *chaosSeed)
		if err != nil {
			fatalf("elasticd: %v", err)
		}
		eng = chaos.New(sc)
		tcfg.WrapConn = func(conn net.Conn, dialed bool) net.Conn {
			return eng.WrapConn(transport.ProcID(selfProc.Load()))(conn, dialed)
		}
		// Point-gated rules (the kill-at-* presets) fire off transport.Hit,
		// which only reaches the engine while it is installed.
		eng.Install()
		defer eng.Uninstall()
		log.Printf("elasticd: chaos scenario %q seed=%d armed", sc.Name, sc.Seed)
		defer func() { log.Printf("elasticd: %s", eng.String()) }()
	}

	ep, err := tcpnet.Listen(*listen, tcfg)
	if err != nil {
		fatalf("elasticd: %v", err)
	}
	defer ep.Close()
	fmt.Printf("elasticd: transport listening on %s\n", ep.Addr())
	rec.Membership(0, -1, "listen", map[string]any{"addr": ep.Addr(), "obs": obsAddr})

	cl, err := rendezvous.JoinWith(*rdv, rendezvous.JoinOptions{
		SelfAddr: ep.Addr(),
		Timeout:  5 * time.Minute,
		Spare:    *spare,
	})
	if err != nil {
		fatalf("elasticd: %v", err)
	}
	defer cl.Close()
	selfProc.Store(int64(cl.Proc()))
	ep.Start(cl.Proc(), cl.Peers())
	// Late joiners and warm spares announced after the welcome must be
	// dialable before the autopilot streams state to them or grows them
	// into a collective; Start is idempotent.
	teach := func(p transport.ProcID, addr, _ string) {
		ep.Start(cl.Proc(), map[transport.ProcID]string{p: addr})
	}
	cl.StartNotify(rendezvous.Notifications{
		OnPeerDown: func(d transport.ProcID) {
			log.Printf("elasticd: rendezvous declared proc %d down", d)
			ep.MarkDead(d)
		},
		OnPeerUp:  teach,
		OnSpareUp: teach,
	})
	log.Printf("elasticd: joined as proc %d (rank %d of %d), transport %s",
		cl.Proc(), cl.Rank(), cl.World(), ep.Addr())
	if eng != nil {
		// OpKill is a silent death, as close to kill -9 as the process can
		// give itself: no rendezvous leave, no connection teardown beyond
		// the endpoint closing — survivors learn of it from missed
		// heartbeats, exactly like an external kill.
		eng.OnKill(cl.Proc(), func() {
			log.Printf("elasticd: chaos kill firing, dying silently")
			cl.Abandon()
			ep.Close()
			// Silent to the cluster, not to the operator: the journal still
			// flushes, so post-mortem analysis sees everything up to the kill.
			jn.Close()
			os.Exit(3)
		})
	}

	var tep transport.Endpoint = ep
	if eng != nil {
		tep = eng.Wrap(ep)
	}
	p := mpi.Attach(tep)

	ulfmPolicy := ulfm.DefaultPolicy()
	reconfigs := 0
	ulfmPolicy.OnReconfigure = func(nc *mpi.Comm, bd *metrics.Breakdown) {
		reconfigs++
		rec.Recovery(ep.VClock().Now(), int(cl.Proc()), reconfigs, "failure", bd, false)
		log.Printf("elasticd: reconfigured to size %d (recovery #%d)", nc.Size(), reconfigs)
	}

	// With -policy, each member runs a recovery-policy engine in the
	// advisor seat: the deciding rank classifies every failure, picks the
	// predicted-cheapest strategy from live obs readings, and the choice
	// replicates through the repair pipeline. The checkpoint store gives
	// rollback a candidate restore point (saved every step in runSteps);
	// the spare pool size comes live from the rendezvous hub.
	var polEng *policy.Engine
	var ckStore *checkpoint.Store
	if *policyMode != "" {
		mode, err := policy.ParseMode(*policyMode)
		if err != nil {
			fatalf("elasticd: %v", err)
		}
		ckStore = checkpoint.NewStore()
		polEng = policy.New(policy.Config{
			Mode:       mode,
			Spares:     func() int { return len(cl.SpareProcs()) },
			Checkpoint: ckStore.AgeProbe(int(cl.Proc()), func() float64 { return ep.VClock().Now() }),
			Trace:      rec,
			Proc:       cl.Proc(),
		})
		ulfmPolicy.Advisor = polEng
		log.Printf("elasticd: recovery policy engine on (mode %s)", mode)
	}

	d := &daemon{
		cl: cl, ep: ep, rec: rec, opts: opts,
		n: *n, steps: *steps, stepInterval: *stepInterval,
		ck: ckStore,
	}
	if elasticOn {
		var gate func(int) bool
		if polEng != nil {
			gate = polEng.GateSwap
		}
		d.el = newElastic(cl, rec, sched, *xferRate, *loadMetric, *loadHigh, *loadLow, gate)
	}

	// Each worker contributes a constant vector of proc+1, so the
	// reduced value tracks exactly which members contributed: with
	// procs 0..3 alive the sum is 10; after proc 3 dies it drops to 6 —
	// or, with -scale-policy and a spare pool, bounces back as the
	// autopilot swaps a newcomer in.
	runErr := func() error {
		if *spare {
			return d.runSpare(p, ulfmPolicy)
		}
		comm, err := mpi.World(p, cl.Procs())
		if err != nil {
			return err
		}
		r := ulfm.New(comm, nil, ulfmPolicy)
		// The resolved data-plane plan goes to stdout at startup (what the
		// first round will run, per the tuner's current model) and into the
		// journal every round — after a shrink or enough observations the
		// tuned pick can change, and the journal is where that shows.
		plan := mpi.PlanAllreduce(int64(*n)*8, cl.World(), opts)
		fmt.Printf("elasticd: data plane: %s (%d x float64, world %d)\n", plan, *n, cl.World())
		d.awaitSpares(*spares, 2*time.Minute)
		return d.runSteps(r, 0)
	}()
	if runErr != nil {
		if errors.Is(runErr, ulfm.ErrDropped) {
			log.Printf("elasticd: dropped from the communicator, exiting")
			return
		}
		fatalf("elasticd: %v", runErr)
	}
}
