package main

// Exit-path tests for the worker daemon, run via the helper-process
// pattern: the test binary re-execs itself with ELASTICD_MAIN=1 and acts
// as a real elasticd. The property pinned here is that the buffered
// trace journal is flushed — every line parses as JSON — on every way
// out of the process: normal completion, a chaos-injected silent death
// (exit 3), and SIGTERM. Before the journal close was routed through
// these paths, a kill could truncate or empty the journal.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestMain(m *testing.M) {
	if os.Getenv("ELASTICD_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freePort reserves an ephemeral loopback port and releases it for the
// daemon to bind (rendezvous needs one address both served and dialed).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// elasticdCmd builds a self-exec command for a single-worker world that
// hosts its own rendezvous service.
func elasticdCmd(t *testing.T, journal string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-serve", "-rendezvous", freePort(t), "-world", "1",
		"-n", "16", "-trace", journal,
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ELASTICD_MAIN=1")
	return cmd
}

// checkJournal asserts every journal line parses as a trace.Event and
// returns the events.
func checkJournal(t *testing.T, path string) []trace.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	var events []trace.Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("journal line %d unparseable (truncated flush?): %q: %v",
				len(events)+1, sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan journal: %v", err)
	}
	return events
}

func hasKind(events []trace.Event, kind string) bool {
	for _, ev := range events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func TestJournalFlushedOnNormalExit(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cmd := elasticdCmd(t, journal, "-steps", "2", "-step-interval", "10ms")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("elasticd failed: %v\n%s", err, out)
	}
	events := checkJournal(t, journal)
	if !hasKind(events, "finish") {
		t.Errorf("journal lacks a finish event; got %d events\n%s", len(events), out)
	}
}

func TestJournalFlushedOnChaosKill(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cmd := elasticdCmd(t, journal, "-steps", "10", "-step-interval", "10ms",
		"-chaos", "kill-at-round", "-chaos.seed", "1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want chaos-kill exit code 3, got err=%v\n%s", err, out)
	}
	events := checkJournal(t, journal)
	if len(events) == 0 {
		t.Errorf("journal empty after chaos kill — OnKill path lost the flush\n%s", out)
	}
	if hasKind(events, "finish") {
		t.Errorf("killed run journaled a finish event\n%s", out)
	}
}

func TestJournalFlushedOnSigterm(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cmd := elasticdCmd(t, journal, "-steps", "1000", "-step-interval", "50ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Wait for the first completed step so the journal has a member_join
	// buffered, then interrupt mid-run.
	sc := bufio.NewScanner(stdout)
	stepping := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "step ") {
			stepping = true
			break
		}
	}
	if !stepping {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("worker never reached its first step")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 143 {
			t.Fatalf("want SIGTERM exit code 143, got %v", err)
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("worker ignored SIGTERM")
	}
	events := checkJournal(t, journal)
	if len(events) == 0 {
		t.Error("journal empty after SIGTERM — signal handler lost the flush")
	}
}

// TestSpareSwapAbsorbsKill is the daemon-level elasticity demo as a
// test: a two-worker world with one warm spare and -scale-policy swap.
// One worker is chaos-killed mid-training (silent death, exit 3); the
// autopilot on the surviving rank 0 swaps the spare in at the next
// boundary, streams it the model state, and both the leader and the
// spare finish all steps — their journals must carry finish events.
func TestSpareSwapAbsorbsKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	rdv := freePort(t)
	dir := t.TempDir()
	journal := func(name string) string { return filepath.Join(dir, name+".jsonl") }
	mk := func(name string, extra ...string) *exec.Cmd {
		args := append([]string{
			"-rendezvous", rdv, "-steps", "12", "-step-interval", "20ms",
			"-n", "16", "-scale-policy", "swap", "-hb", "50ms",
			"-trace", journal(name),
		}, extra...)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "ELASTICD_MAIN=1")
		return cmd
	}
	lead := mk("lead", "-serve", "-world", "2", "-spares", "1")
	victim := mk("victim", "-chaos", "kill-at-round", "-chaos.seed", "1")
	spare := mk("spare", "-spare")

	var leadOut, victimOut, spareOut strings.Builder
	lead.Stdout, lead.Stderr = &leadOut, &leadOut
	victim.Stdout, victim.Stderr = &victimOut, &victimOut
	spare.Stdout, spare.Stderr = &spareOut, &spareOut
	if err := lead.Start(); err != nil {
		t.Fatalf("start lead: %v", err)
	}
	defer func() { lead.Process.Kill(); lead.Wait() }()
	if err := victim.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	defer func() { victim.Process.Kill(); victim.Wait() }()
	if err := spare.Start(); err != nil {
		t.Fatalf("start spare: %v", err)
	}
	defer func() { spare.Process.Kill(); spare.Wait() }()

	wait := func(name string, cmd *exec.Cmd, wantExit int) {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("%s: wait: %v", name, err)
			}
			if code != wantExit {
				t.Fatalf("%s: exit %d, want %d\nlead:\n%s\nvictim:\n%s\nspare:\n%s",
					name, code, wantExit, leadOut.String(), victimOut.String(), spareOut.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("%s did not exit\nlead:\n%s\nvictim:\n%s\nspare:\n%s",
				name, leadOut.String(), victimOut.String(), spareOut.String())
		}
	}
	wait("victim", victim, 3) // chaos kill
	wait("lead", lead, 0)
	wait("spare", spare, 0)

	if !hasKind(checkJournal(t, journal("lead")), "finish") {
		t.Errorf("lead journal lacks a finish event\n%s", leadOut.String())
	}
	spareEvents := checkJournal(t, journal("spare"))
	if !hasKind(spareEvents, "finish") {
		t.Errorf("spare journal lacks a finish event\n%s", spareOut.String())
	}
	if !hasKind(spareEvents, "spare_enter") {
		t.Errorf("spare journal lacks a spare_enter event\n%s", spareOut.String())
	}
	if !strings.Contains(leadOut.String(), "admitted proc") {
		t.Errorf("lead never logged a spare admission\n%s", leadOut.String())
	}
}

// TestObsEndpointServes boots a worker with -obs.listen and scrapes it
// while it steps: /metrics must answer with a valid exposition that
// includes the transport counters this very run is driving.
func TestObsEndpointServes(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	obsAddr := freePort(t)
	cmd := elasticdCmd(t, journal, "-steps", "40", "-step-interval", "50ms",
		"-obs.listen", obsAddr)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	body, err := scrapeWhileRunning(obsAddr, 10*time.Second)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	for _, want := range []string{
		"tcpnet_tx_frames_total",
		"rendezvous_peers{state=\"alive\"} 1",
		"trace_events_total{kind=\"member_join\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape lacks %q\n%s", want, body)
		}
	}
}

// scrapeWhileRunning polls addr until /metrics answers, then returns the
// body. Raw TCP + HTTP/1.0 keeps the test free of client-side caching.
func scrapeWhileRunning(addr string, budget time.Duration) (string, error) {
	deadline := time.Now().Add(budget)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	var lastErr error
	for range tick.C {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no scrape before deadline: %v", lastErr)
		}
		body, err := httpGet(addr, "/metrics")
		if err == nil {
			return body, nil
		}
		lastErr = err
	}
	return "", lastErr
}

func httpGet(addr, path string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n", path, addr)
	var sb strings.Builder
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inBody := false
	status := ""
	for sc.Scan() {
		line := sc.Text()
		if status == "" {
			status = line
			continue
		}
		if !inBody {
			if line == "" {
				inBody = true
			}
			continue
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if !strings.Contains(status, " 200 ") {
		return "", fmt.Errorf("status %q", status)
	}
	return sb.String(), sc.Err()
}
