package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/transport"
	"repro/internal/transport/chaos"
)

// pointPresets are elasticd-local chaos scenarios gated on transport
// protocol points, complementing the data-plane presets the chaos
// package ships. Where those perturb traffic (drop, delay, reorder,
// reset), these kill the worker at a named instant of the elastic
// protocol, reproducing the deaths the paper's recovery pipeline must
// absorb: mid-round, at commit, inside an ongoing repair, and while
// growing newcomers in. Pass the flag to the worker that should die;
// the survivors run clean.
//
// Every Point value is a named transport.Point* constant — the
// hookpoint analyzer rejects raw strings here, so this table cannot
// drift from hooks.go.
var pointPresets = map[string]func(seed int64) chaos.Scenario{
	// kill-at-round: the worker dies as it enters its second allreduce
	// round — the bread-and-butter mid-training failure.
	"kill-at-round": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "kill-at-round", Seed: seed, Rules: []chaos.Rule{{
			Name: "kill-at-round", Proc: chaos.AnyProc,
			Point: transport.PointElasticRound, Nth: 2, Op: chaos.OpKill,
		}}}
	},
	// kill-at-commit: the worker dies at its first round commit,
	// exercising the window between a finished collective and the
	// round's bookkeeping.
	"kill-at-commit": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "kill-at-commit", Seed: seed, Rules: []chaos.Rule{{
			Name: "kill-at-commit", Proc: chaos.AnyProc,
			Point: transport.PointElasticCommit, Nth: 1, Op: chaos.OpKill,
		}}}
	},
	// kill-in-repair: the worker dies the first time it observes a
	// revocation — a cascading failure landing inside another failure's
	// repair.
	"kill-in-repair": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "kill-in-repair", Seed: seed, Rules: []chaos.Rule{{
			Name: "kill-in-repair", Proc: chaos.AnyProc,
			Point: transport.PointUlfmRevoked, Nth: 1, Op: chaos.OpKill,
		}}}
	},
	// kill-at-grow: the worker dies while shipping grow state to a
	// joiner, the most fragile instant of elastic scale-up.
	"kill-at-grow": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "kill-at-grow", Seed: seed, Rules: []chaos.Rule{{
			Name: "kill-at-grow", Proc: chaos.AnyProc,
			Point: transport.PointGrowSend, Nth: 1, Op: chaos.OpKill,
		}}}
	},
	// kill-at-state-transfer: pass to a -spare worker; it dies on the
	// first chunk of the newcomer state stream, leaving the sender
	// blocked on an ack that never comes until the death verdict lands.
	"kill-at-state-transfer": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "kill-at-state-transfer", Seed: seed, Rules: []chaos.Rule{{
			Name: "kill-at-state-transfer", Proc: chaos.AnyProc,
			Point: transport.PointStateRecv, Nth: 1, Op: chaos.OpKill,
		}}}
	},
	// flap-autoscale: pass to a -spare worker; it receives and acks the
	// full state stream, then dies before its first round — a scale-up
	// verdict immediately followed by the newcomer's death, the flap the
	// autopilot must absorb without double-booking the pool.
	"flap-autoscale": func(seed int64) chaos.Scenario {
		return chaos.Scenario{Name: "flap-autoscale", Seed: seed, Rules: []chaos.Rule{{
			Name: "flap-autoscale", Proc: chaos.AnyProc,
			Point: transport.PointStateAck, Nth: 1, Op: chaos.OpKill,
		}}}
	},
}

// chaosScenario resolves -chaos: elasticd's point-gated presets first,
// then the chaos package's data-plane presets.
func chaosScenario(name string, seed int64) (chaos.Scenario, error) {
	if p, ok := pointPresets[name]; ok {
		return p(seed), nil
	}
	sc, err := chaos.Preset(name, seed)
	if err != nil {
		return chaos.Scenario{}, fmt.Errorf("unknown chaos scenario %q (have %s)", name, chaosNames())
	}
	return sc, nil
}

// chaosNames lists every scenario -chaos accepts.
func chaosNames() string {
	names := chaos.PresetNames()
	for n := range pointPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
