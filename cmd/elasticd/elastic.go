package main

// The daemon's elasticity half: a per-process autopilot seat driven at
// every step boundary, plus the warm-spare life cycle for processes
// started with -spare. The decision seat is rank 0 of the current
// communicator, so it migrates on repair exactly like the clustertest
// harness. The schedule half of the scale-down target is NOT replicated
// over the wire — every worker passes the same -scale-policy, so that
// component is a pure function of the schedule and the gathered world
// size, and each process computes it locally. The load half cannot be:
// only the seat samples the metric, so when -load-metric is set the
// seat's current target rides a resilient broadcast at each boundary
// and every member uses the replicated value for the eviction check.

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"repro/internal/autopilot"
	"repro/internal/checkpoint"
	"repro/internal/mpi"
	"repro/internal/rendezvous"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/tcpnet"
	"repro/internal/ulfm"
)

// parseScalePolicy resolves the -scale-policy flag: "" disables the
// grow boundary, "swap" enables it with no schedule (replace deaths
// from the spare pool only), anything else is an autopilot schedule.
func parseScalePolicy(v string) (sched []autopilot.ScheduleStep, enabled bool, err error) {
	switch strings.TrimSpace(v) {
	case "":
		return nil, false, nil
	case "swap":
		return nil, true, nil
	}
	sched, err = autopilot.ParseSchedule(v)
	if err != nil {
		return nil, false, err
	}
	return sched, true, nil
}

// elastic is one worker's share of the control loop.
type elastic struct {
	ctl      *autopilot.Controller
	sched    []autopilot.ScheduleStep
	base     int  // gathered world size: the schedule's starting target
	loadOn   bool // -load-metric set: the seat's target replicates each boundary
	target   int  // last broadcast seat target; 0 until the first boundary lands
	xfer     autopilot.XferOptions
	admitted map[transport.ProcID]bool
	failed   map[transport.ProcID]bool
}

func newElastic(cl *rendezvous.Client, rec *trace.Recorder, sched []autopilot.ScheduleStep, rate float64, loadMetric string, loadHigh, loadLow float64, gate func(int) bool) *elastic {
	// The load probe reads whatever the instrumented packages already
	// publish to the default registry; before the metric's first
	// registration it reads NaN, which Decide treats as "hold".
	var load func() float64
	if loadMetric != "" {
		load = autopilot.LoadFromObs(nil, loadMetric)
	}
	return &elastic{
		ctl: autopilot.New(autopilot.Config{
			Target:   cl.World(),
			Schedule: sched,
			Load:     load,
			LoadHigh: loadHigh,
			LoadLow:  loadLow,
			SwapGate: gate,
			Trace:    rec,
			Proc:     cl.Proc(),
		}),
		sched:    sched,
		base:     cl.World(),
		loadOn:   loadMetric != "",
		xfer:     autopilot.XferOptions{RateBytesPerSec: rate},
		admitted: map[transport.ProcID]bool{},
		failed:   map[transport.ProcID]bool{},
	}
}

// targetAt is the schedule's desired world size after the boundary at
// `step` — deterministic, so every member (including newcomers that
// joined mid-schedule) agrees on it without any extra wire traffic.
func (el *elastic) targetAt(step int) int {
	t := el.base
	for _, s := range el.sched {
		if s.Step <= step {
			t += s.Delta
		}
	}
	return t
}

// idle is the pool fed to the controller: the spares the rendezvous hub
// advertises, minus the ones this seat already admitted or burned (the
// hub view lags an activation by one delta round-trip).
func (el *elastic) idle(cl *rendezvous.Client) []transport.ProcID {
	var out []transport.ProcID
	for _, p := range cl.SpareProcs() {
		if !el.admitted[p] && !el.failed[p] {
			out = append(out, p)
		}
	}
	return out
}

// daemon bundles the long-lived halves of the process so the step loop
// is shared between the gathered-worker and admitted-spare paths.
type daemon struct {
	cl           *rendezvous.Client
	ep           *tcpnet.Endpoint
	rec          *trace.Recorder
	opts         mpi.AllreduceOptions
	n            int
	steps        int
	stepInterval time.Duration
	el           *elastic          // nil = fixed world, no grow boundaries
	ck           *checkpoint.Store // nil unless -policy: rollback restore points
}

// runSteps is the training loop from step `start`: one resilient
// allreduce per step, then (when -scale-policy is set) the autopilot
// grow boundary. Returns nil on completion or a clean scale-down leave;
// ulfm.ErrDropped propagates for the caller to report.
func (d *daemon) runSteps(r *ulfm.ResilientComm, start int) error {
	tensorBytes := int64(d.n) * 8
	for step := start; step < d.steps; step++ {
		transport.Hit(d.cl.Proc(), transport.PointElasticRound)
		plan := mpi.PlanAllreduce(tensorBytes, r.Size(), d.opts)
		d.rec.Plan(d.ep.VClock().Now(), int(d.cl.Proc()), step, plan.Algo.String(), plan.Chunks, plan.Codec.String(), plan.Tuned)
		data := make([]float64, d.n)
		for i := range data {
			data[i] = float64(d.cl.Proc()) + 1
		}
		if err := ulfm.AllreduceOpts(r, data, mpi.OpSum, d.opts); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		// A repair that adopted the rollback strategy leaves a one-shot
		// flag on the communicator: discard this round's (retried) result,
		// restore the last per-step snapshot, and resume from the step
		// after the one the snapshot is stamped with.
		if d.ck != nil && r.TakeRollback() {
			if snap, lerr := d.ck.Load(int(d.cl.Proc())); lerr == nil {
				d.rec.Membership(d.ep.VClock().Now(), int(d.cl.Proc()), "rollback_restore",
					map[string]any{"from_step": step, "to_step": snap.Step})
				log.Printf("elasticd: policy chose rollback, restoring step-%d checkpoint (was at step %d)",
					snap.Step, step)
				step = snap.Step
				continue
			} else {
				log.Printf("elasticd: rollback advised but no restore point: %v", lerr)
			}
		}
		fmt.Printf("step %3d  proc %d  size %d  sum %.0f\n",
			step, d.cl.Proc(), r.Size(), data[0])
		transport.Hit(d.cl.Proc(), transport.PointElasticCommit)
		if d.ck != nil {
			model := make(tensor.Vector, len(data))
			for i, v := range data {
				model[i] = float32(v)
			}
			d.ck.Save(int(d.cl.Proc()), &checkpoint.Snapshot{
				Step:       step,
				Model:      model,
				WorldSize:  r.Size(),
				SavedAtSec: d.ep.VClock().Now(),
			})
		}
		if d.el != nil && step < d.steps-1 {
			evict, err := d.boundary(r, step, data)
			if err != nil {
				return fmt.Errorf("boundary %d: %w", step, err)
			}
			if evict {
				d.rec.Membership(d.ep.VClock().Now(), int(d.cl.Proc()), "scale_down_leave",
					map[string]any{"step": step})
				log.Printf("elasticd: scaled down at step %d, leaving cleanly", step)
				return nil
			}
		}
		time.Sleep(d.stepInterval)
	}
	d.rec.Finish(d.ep.VClock().Now(), int(d.cl.Proc()), r.Comm().Rank(), r.Size())
	log.Printf("elasticd: done after %d steps, final size %d", d.steps, r.Size())
	return nil
}

// boundary is the epoch boundary after round `step`: rank 0 consults
// the autopilot, the decision replicates through ulfm.Grow's resilient
// broadcasts (plus one target broadcast when a load signal is on),
// admitted spares are streamed the model state (the round's reduced
// tensor) under the bandwidth cap, and if the world exceeds the target
// the highest rank reports evict=true and leaves.
func (d *daemon) boundary(r *ulfm.ResilientComm, step int, data []float64) (evict bool, err error) {
	el := d.el
	var admit []transport.ProcID
	if r.Comm().Rank() == 0 {
		now := d.ep.VClock().Now()
		el.ctl.ObserveMembers(now, r.Comm().Procs())
		el.ctl.ObservePool(el.idle(d.cl))
		dec := el.ctl.Decide(now, step)
		admit = dec.Admit
	}
	// With a load signal the target is no longer a pure function of the
	// schedule — only the seat samples the metric — so replicate it over
	// the pre-grow communicator. Pre-grow, because a spare admitted this
	// boundary is still inside RecvState and cannot take part in a
	// collective; it picks the value up at its first boundary as a full
	// member (until then its local targetAt equals its entry size, which
	// holds it in place). On seat migration the load-accrued component
	// resets and is re-derived from the metric at the next boundary.
	if el.loadOn {
		tgt := []int64{0}
		if r.Comm().Rank() == 0 {
			tgt[0] = int64(el.ctl.Target())
		}
		if berr := ulfm.Bcast(r, tgt, 0); berr != nil {
			return false, berr
		}
		if tgt[0] > 0 {
			el.target = int(tgt[0])
		}
	}
	newcomers, err := r.Grow(admit)
	if err != nil {
		return false, err
	}
	if r.Comm().Rank() == 0 && len(newcomers) > 0 {
		state := packState(data)
		for _, np := range newcomers {
			xfer := el.xfer
			xfer.Step = int64(step)
			if serr := autopilot.SendState(d.ep, np, state, xfer); serr != nil {
				// Burned spare: the next collective repairs the corpse out
				// and the next boundary tries the next one.
				log.Printf("elasticd: state stream to %d failed: %v", np, serr)
				el.failed[np] = true
				el.ctl.SwapFailed(np)
				continue
			}
			el.admitted[np] = true
			el.ctl.Admitted(d.ep.VClock().Now(), []transport.ProcID{np})
			if aerr := d.cl.Activate(np); aerr != nil {
				log.Printf("elasticd: activate %d: %v", np, aerr)
			}
			log.Printf("elasticd: admitted proc %d at step %d (world %d)", np, step, r.Size())
		}
	}
	target := el.targetAt(step)
	if el.loadOn && el.target > 0 {
		target = el.target
	}
	if target > 0 && r.Size() > target {
		procs := r.Comm().Procs()
		evictee := procs[len(procs)-1] // highest rank: the newest member
		if r.Comm().Rank() == 0 {
			el.ctl.Evicted(evictee)
		}
		if evictee == d.cl.Proc() {
			return true, nil
		}
	}
	return false, nil
}

// runSpare is a -spare process's life: stand by until the autopilot's
// Grow welcome arrives, receive the bandwidth-capped state stream, and
// train the remaining steps like any member — entering at the epoch
// after the one the state is stamped with, exactly as the paper
// specifies.
func (d *daemon) runSpare(p *mpi.Proc, policy ulfm.Policy) error {
	log.Printf("elasticd: warm spare proc %d standing by", d.cl.Proc())
	d.rec.Membership(d.ep.VClock().Now(), int(d.cl.Proc()), "spare_standby", nil)
	comm, err := mpi.Join(p)
	if err != nil {
		return fmt.Errorf("spare join: %w", err)
	}
	log.Printf("elasticd: admitted into communicator %#x (size %d), receiving state", comm.ID(), comm.Size())
	state, step, err := autopilot.RecvState(d.ep)
	if err != nil {
		return fmt.Errorf("spare state recv: %w", err)
	}
	model := unpackState(state)
	if len(model) == 0 {
		return fmt.Errorf("spare state recv: empty model")
	}
	d.rec.Membership(d.ep.VClock().Now(), int(d.cl.Proc()), "spare_enter",
		map[string]any{"step": step, "bytes": len(state)})
	log.Printf("elasticd: received %d state bytes (model[0]=%.0f, step %d), entering at step %d",
		len(state), model[0], step, step+1)
	return d.runSteps(ulfm.New(comm, nil, policy), int(step)+1)
}

// awaitSpares blocks until the rendezvous hub advertises at least n
// warm spares, so demo choreography (-spares) can start workers and
// spares in any order and still have the pool ready at the first
// boundary.
func (d *daemon) awaitSpares(n int, timeout time.Duration) {
	if n <= 0 {
		return
	}
	deadline := time.Now().Add(timeout)
	for len(d.cl.SpareProcs()) < n {
		if time.Now().After(deadline) {
			log.Printf("elasticd: warning: only %d of %d warm spares registered in %v",
				len(d.cl.SpareProcs()), n, timeout)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Printf("elasticd: %d warm spare(s) in the pool", len(d.cl.SpareProcs()))
}

// packState serializes the round's reduced tensor as the newcomer state
// blob; unpackState reverses it on the receiving spare.
func packState(data []float64) []byte {
	b := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func unpackState(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
