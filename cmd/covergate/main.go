// Command covergate turns a go test -coverprofile into a per-package
// coverage summary and enforces two kinds of bars:
//
//   - absolute floors: -floor repro/internal/obs=70 fails if the package
//     covers less than 70% of its statements;
//   - a committed baseline: -baseline COVERAGE_baseline.json -maxdrop 2
//     fails if any baselined package dropped more than 2 points below
//     its committed coverage (small refactors breathe, rot does not).
//
// Regenerate the baseline after intentional coverage changes:
//
//	go test ./... -coverprofile=cover.out
//	covergate -profile cover.out -baseline COVERAGE_baseline.json -write \
//	    -track repro/internal/transport -track repro/internal/transport/tcpnet \
//	    -track repro/internal/mpi -track repro/internal/ulfm
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed COVERAGE_baseline.json document.
type Baseline struct {
	// Packages maps import path to committed statement coverage (percent).
	Packages map[string]float64 `json:"packages"`
}

type floorList map[string]float64

func (f floorList) String() string { return fmt.Sprint(map[string]float64(f)) }
func (f floorList) Set(s string) error {
	pkg, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want pkg=percent, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	f[pkg] = v
	return nil
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile from go test -coverprofile")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	maxDrop := flag.Float64("maxdrop", 2.0, "allowed coverage drop (points) below the baseline")
	write := flag.Bool("write", false, "regenerate the baseline instead of gating")
	floors := floorList{}
	flag.Var(floors, "floor", "absolute floor, pkg=percent (repeatable)")
	var track stringList
	flag.Var(&track, "track", "with -write: package to record in the baseline (repeatable)")
	flag.Parse()

	cov, err := perPackage(*profile)
	check(err)

	pkgs := make([]string, 0, len(cov))
	for p := range cov {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	fmt.Printf("%-50s %9s\n", "package", "coverage")
	for _, p := range pkgs {
		fmt.Printf("%-50s %8.1f%%\n", p, cov[p])
	}

	if *write {
		if *baselinePath == "" {
			fatalf("-write requires -baseline")
		}
		bl := Baseline{Packages: map[string]float64{}}
		for _, p := range track {
			c, ok := cov[p]
			if !ok {
				fatalf("tracked package %s not in profile", p)
			}
			// Floor to one decimal so runner jitter doesn't churn the file.
			bl.Packages[p] = float64(int(c*10)) / 10
		}
		blob, err := json.MarshalIndent(&bl, "", "  ")
		check(err)
		check(os.WriteFile(*baselinePath, append(blob, '\n'), 0o644))
		fmt.Printf("covergate: wrote %s (%d packages)\n", *baselinePath, len(bl.Packages))
		return
	}

	failures := 0
	for pkg, floor := range floors {
		c, ok := cov[pkg]
		if !ok {
			fmt.Fprintf(os.Stderr, "covergate: FLOOR %s: package missing from profile\n", pkg)
			failures++
			continue
		}
		if c < floor {
			fmt.Fprintf(os.Stderr, "covergate: FLOOR %s: %.1f%% < required %.1f%%\n", pkg, c, floor)
			failures++
		}
	}
	if *baselinePath != "" {
		blob, err := os.ReadFile(*baselinePath)
		check(err)
		var bl Baseline
		check(json.Unmarshal(blob, &bl))
		for pkg, base := range bl.Packages {
			c, ok := cov[pkg]
			if !ok {
				fmt.Fprintf(os.Stderr, "covergate: BASELINE %s: package missing from profile\n", pkg)
				failures++
				continue
			}
			if c < base-*maxDrop {
				fmt.Fprintf(os.Stderr, "covergate: BASELINE %s: %.1f%% dropped more than %.1f points below %.1f%%\n",
					pkg, c, *maxDrop, base)
				failures++
			}
		}
	}
	if failures > 0 {
		fatalf("%d coverage gate failure(s)", failures)
	}
	fmt.Println("covergate: all gates passed")
}

// perPackage aggregates a coverprofile into statement coverage percent by
// package import path. Lines are `file:start,end numStmts hitCount`; a
// statement block counts as covered when any profile line hit it (mode
// set and atomic both reduce to hit/not-hit here).
func perPackage(path_ string) (map[string]float64, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type tally struct{ covered, total int }
	// Blocks can repeat across profile lines (merged runs); key each block
	// and OR the hits so duplicates don't double-count statements.
	blocks := map[string]*struct {
		stmts int
		hit   bool
	}{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		loc, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		var stmts, count int
		if _, err := fmt.Sscanf(rest, "%d %d", &stmts, &count); err != nil {
			return nil, fmt.Errorf("malformed profile line %q: %v", line, err)
		}
		b := blocks[loc]
		if b == nil {
			b = &struct {
				stmts int
				hit   bool
			}{stmts: stmts}
			blocks[loc] = b
		}
		if count > 0 {
			b.hit = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	byPkg := map[string]*tally{}
	for loc, b := range blocks {
		file, _, _ := strings.Cut(loc, ":")
		pkg := path.Dir(file)
		t := byPkg[pkg]
		if t == nil {
			t = &tally{}
			byPkg[pkg] = t
		}
		t.total += b.stmts
		if b.hit {
			t.covered += b.stmts
		}
	}
	out := make(map[string]float64, len(byPkg))
	for pkg, t := range byPkg {
		if t.total == 0 {
			continue
		}
		out[pkg] = 100 * float64(t.covered) / float64(t.total)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covergate: "+format+"\n", args...)
	os.Exit(1)
}
