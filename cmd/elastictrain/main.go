// Command elastictrain runs one elastic training job on the simulated
// cluster, injecting a reconfiguration event, and prints the run summary:
// final worker count, recovery cost breakdowns, loss trajectory (in real
// training mode), and replica-consistency hashes.
//
// Examples:
//
//	elastictrain -stack ulfm -model ResNet50V2 -gpus 24 -scenario down -granularity process
//	elastictrain -stack horovod -model VGG-16 -gpus 48 -scenario same
//	elastictrain -stack ulfm -real -gpus 8 -scenario up -epochs 6
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/elastic"
	"repro/internal/failure"
	"repro/internal/gloo"
	"repro/internal/horovod"
	"repro/internal/kvstore"
	"repro/internal/models"
	"repro/internal/nccl"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	stack := flag.String("stack", "ulfm", "communication stack: ulfm | horovod")
	model := flag.String("model", "ResNet50V2", "Table 1 model for virtual mode")
	real := flag.Bool("real", false, "train the real (small) MLP instead of a virtual model")
	gpus := flag.Int("gpus", 24, "worker count (one per simulated GPU)")
	scenario := flag.String("scenario", "down", "reconfiguration scenario: down | same | up")
	granularity := flag.String("granularity", "process", "failure blast / drop policy: process | node")
	epochs := flag.Int("epochs", 3, "epochs to train")
	failEpoch := flag.Int("fail-epoch", 1, "epoch of the reconfiguration event")
	failStep := flag.Int("fail-step", 1, "step of the reconfiguration event")
	mtbf := flag.Float64("mtbf", 0, "mean steps between failures (exponential); overrides -fail-epoch/-fail-step")
	seed := flag.Int64("seed", 1, "seed for -mtbf schedules")
	traceFile := flag.String("trace", "", "write a JSON-lines journal of recoveries/joins/completions to this file")
	flag.Parse()

	var rec *trace.Recorder
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("create trace file: %v", err)
		}
		defer f.Close()
		rec = trace.New(f)
	}

	gran := failure.KillProcess
	if *granularity == "node" {
		gran = failure.KillNode
	}

	nodes := (*gpus + 5) / 6
	cluster := simnet.New(simnet.Summit(nodes))

	var tc train.Config
	if *real {
		tc = train.Config{
			Mode:       train.Real,
			MLPSizes:   []int{16, 32, 8},
			Seed:       1,
			Dataset:    data.NewSynthetic(2048, 16, 8, 11),
			BatchSize:  16,
			Epochs:     *epochs,
			BaseLR:     0.05,
			Momentum:   0.9,
			RefWorkers: *gpus,
		}
	} else {
		spec, err := models.ByName(*model)
		if err != nil {
			fatalf("%v (known: VGG-16, ResNet50V2, NasNetMobile)", err)
		}
		tc = train.Config{
			Mode:       train.Virtual,
			Spec:       spec,
			Epochs:     *epochs,
			BaseLR:     0.1,
			RefWorkers: 12,
		}
	}

	var sched *failure.Schedule
	switch {
	case *mtbf > 0:
		// Draw an exponential failure schedule over the whole run; victims
		// are uniform over the initial ranks.
		steps := 100
		if !*real {
			spec, _ := models.ByName(*model)
			steps = spec.EpochSteps(*gpus)
		}
		sched = failure.MTBF(*seed, *mtbf, steps**epochs, steps, *gpus, gran)
	case *scenario == "up":
		sched = failure.GrowAt(*failEpoch, *failStep, *gpus)
	default:
		sched = failure.At(*failEpoch, *failStep, *gpus-1, gran)
	}

	switch *stack {
	case "ulfm":
		cfg := core.Config{
			Train:      tc,
			Horovod:    horovod.DefaultConfig(),
			UseGPU:     !*real,
			NCCL:       nccl.DefaultConfig(),
			Scenario:   coreScenario(*scenario),
			DropPolicy: gran,
			Schedule:   sched,
			Trace:      rec,
		}
		job, err := core.NewJob(cluster, cfg)
		check(err)
		res, err := job.Run()
		check(err)
		fmt.Printf("stack=ulfm scenario=%s granularity=%s\n", *scenario, gran)
		printCommon(res.FinalSize, res.TotalTime, res.LossHistory, hashList(res.FinalHashes))
		for _, ev := range res.Events {
			fmt.Printf("event %d (%s):\n  survivors: %s\n", ev.Seq, ev.Trigger, ev.Critical)
			if ev.Newcomer != nil {
				fmt.Printf("  newcomers: %s\n", ev.Newcomer)
			}
		}
	case "horovod":
		kv := kvstore.New(kvstore.DefaultConfig())
		cfg := elastic.Config{
			Train:    tc,
			Gloo:     gloo.DefaultConfig(),
			Horovod:  horovod.DefaultConfig(),
			UseGPU:   !*real,
			NCCL:     nccl.DefaultConfig(),
			Scenario: ehScenario(*scenario),
			Schedule: sched,
			Trace:    rec,
		}
		job, err := elastic.NewJob(cluster, kv, cfg)
		check(err)
		res, err := job.Run()
		check(err)
		fmt.Printf("stack=elastic-horovod scenario=%s (node-granularity recovery)\n", *scenario)
		printCommon(res.FinalSize, res.TotalTime, res.LossHistory, hashList(res.FinalHashes))
		for _, ev := range res.Events {
			fmt.Printf("round %d (%s):\n  survivors: %s\n", ev.Round, ev.Trigger, ev.Critical)
			if ev.Newcomer != nil {
				fmt.Printf("  newcomers: %s\n", ev.Newcomer)
			}
		}
	default:
		fatalf("unknown -stack %q", *stack)
	}
}

func printCommon(size int, total float64, loss []float64, hashes []uint64) {
	fmt.Printf("final workers: %d\n", size)
	fmt.Printf("virtual run time: %.3fs\n", total)
	if len(loss) > 0 {
		fmt.Printf("epoch losses:")
		for _, l := range loss {
			fmt.Printf(" %.4f", l)
		}
		fmt.Println()
	}
	if len(hashes) > 0 {
		consistent := true
		for _, h := range hashes[1:] {
			if h != hashes[0] {
				consistent = false
			}
		}
		fmt.Printf("replica consistency: %v (%d replicas, state hash %#x)\n", consistent, len(hashes), hashes[0])
	}
}

func hashList(m map[simnet.ProcID]uint64) []uint64 {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]uint64, 0, len(ids))
	for _, id := range ids {
		out = append(out, m[simnet.ProcID(id)])
	}
	return out
}

func coreScenario(s string) core.Scenario {
	switch s {
	case "same":
		return core.ScenarioSame
	case "up":
		return core.ScenarioUp
	default:
		return core.ScenarioDown
	}
}

func ehScenario(s string) elastic.Scenario {
	switch s {
	case "same":
		return elastic.ScenarioSame
	case "up":
		return elastic.ScenarioUp
	default:
		return elastic.ScenarioDown
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "elastictrain: "+format+"\n", args...)
	os.Exit(1)
}
