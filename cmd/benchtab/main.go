// Command benchtab regenerates the paper's tables and figures on the
// simulated testbed and prints them as text.
//
// Usage:
//
//	benchtab -table 1          # Table 1 (benchmark models)
//	benchtab -table 2          # Table 2 (capability matrix, probed)
//	benchtab -figure 2         # recovery granularity comparison
//	benchtab -figure 4         # Scenario I breakdown, ResNet-50, 24 GPUs
//	benchtab -figure 5         # VGG-16 sweep        (12..192 GPUs)
//	benchtab -figure 6         # ResNet-50 sweep
//	benchtab -figure 7         # NasNetMobile sweep
//	benchtab -eq1              # checkpoint cost model
//	benchtab -all              # everything
//	benchtab -figure 6 -scales 12,24,48   # restrict the GPU axis
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/models"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1 or 2)")
	figure := flag.Int("figure", 0, "regenerate Figure N (2, 4, 5, 6, 7; 8 = scale-trend summary)")
	eq1 := flag.Bool("eq1", false, "evaluate the Eq. (1) cost model")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations (allreduce algorithm, fusion, cache, detection timeout, goodput)")
	dataplanePath := flag.String("dataplane", "", "measure the TCP data plane (codec + loopback allreduce) and write the JSON report to this file (- = stdout)")
	controlplanePath := flag.String("controlplane", "", "measure the gossip control plane (membership convergence, simnet virtual time) and write the JSON report to this file (- = stdout)")
	benchtime := flag.String("benchtime", "", "with -dataplane: per-cell measurement goal in -test.benchtime syntax (e.g. 3x, 200ms; default 1s)")
	all := flag.Bool("all", false, "regenerate everything")
	scalesFlag := flag.String("scales", "", "comma-separated GPU counts for sweeps (default 12,24,48,96,192)")
	segments := flag.Bool("segments", false, "with -figure 5/6/7: also print per-segment decompositions")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	printTable := func(t *metrics.Table) {
		if *csv {
			fmt.Print(t.CSV())
			fmt.Println()
			return
		}
		fmt.Println(t)
	}
	printFigure := func(f *metrics.Figure) {
		if *csv {
			fmt.Print(f.CSV())
			fmt.Println()
			return
		}
		fmt.Println(f)
	}

	scales := experiments.SweepScales
	if *scalesFlag != "" {
		scales = nil
		for _, s := range strings.Split(*scalesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fatalf("bad -scales entry %q", s)
			}
			scales = append(scales, v)
		}
	}

	ran := false
	if *all || *table == 1 {
		printTable(experiments.Table1())
		ran = true
	}
	if *all || *table == 2 {
		tab, err := experiments.Table2()
		check(err)
		printTable(tab)
		ran = true
	}
	if *all || *figure == 2 {
		tab, err := experiments.Figure2()
		check(err)
		printTable(tab)
		ran = true
	}
	if *all || *figure == 4 {
		tab, err := experiments.Figure4()
		check(err)
		printTable(tab)
		ran = true
	}
	sweeps := map[int]models.Spec{5: models.VGG16, 6: models.ResNet50V2, 7: models.NasNetMobile}
	for n := 5; n <= 7; n++ {
		if *all || *figure == n {
			spec := sweeps[n]
			fig, err := experiments.SweepFigure(spec, scales)
			check(err)
			fig.Title = fmt.Sprintf("Figure %d: %s", n, fig.Title)
			printFigure(fig)
			if *segments || *all {
				for _, scen := range experiments.Scenarios() {
					seg, err := experiments.SweepSegments(spec, scen, scales)
					check(err)
					printFigure(seg)
				}
			}
			ran = true
		}
	}
	if *all || *figure == 8 {
		// Not a paper figure: the scale-trend summary backing the paper's
		// closing claim.
		tab, err := experiments.ScaleTrendTable(models.NasNetMobile, scales)
		check(err)
		printTable(tab)
		ran = true
	}
	if *all || *eq1 {
		tab, err := experiments.Eq1Table()
		check(err)
		printTable(tab)
		ran = true
	}
	if *all || *ablations {
		tab, err := experiments.AllreduceAlgoTable(24, []int{1024, 16384, 262144, 4194304})
		check(err)
		printTable(tab)
		tab, err = experiments.FusionTable(models.ResNet50V2, 24, []int64{1 << 20, 8 << 20, 64 << 20, 256 << 20})
		check(err)
		printTable(tab)
		tab, err = experiments.CacheTable(models.NasNetMobile, 24)
		check(err)
		printTable(tab)
		tab, err = experiments.DetectionTimeoutTable([]float64{0.5, 1, 2, 5, 10})
		check(err)
		printTable(tab)
		tab, err = experiments.GoodputTable(models.NasNetMobile, 24, []int{1, 2, 3})
		check(err)
		printTable(tab)
		tab, err = experiments.ConvergenceTable()
		check(err)
		printTable(tab)
		tab, err = experiments.CompressionTable(8, 1<<16)
		check(err)
		printTable(tab)
		printTable(experiments.PFSTable())
		ran = true
	}
	if *dataplanePath != "" {
		// Real wall-clock benchmarks (not the virtual testbed): the
		// wire codec and loopback TCP allreduces, gob-vs-raw and
		// ring-vs-pipelined, against the pre-PR baseline.
		fmt.Fprintln(os.Stderr, "benchtab: measuring the TCP data plane (takes a minute)...")
		cfg := dataplane.Default()
		cfg.Benchtime = *benchtime
		rep, err := dataplane.Collect(cfg)
		check(err)
		blob, err := rep.JSON()
		check(err)
		if *dataplanePath == "-" {
			fmt.Print(string(blob))
		} else {
			check(os.WriteFile(*dataplanePath, blob, 0o644))
			fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", *dataplanePath)
		}
		ran = true
	}
	if *controlplanePath != "" {
		// Deterministic virtual-time measurements: the simulator's event
		// heap and seeded RNG fully determine every number, so this runs
		// in well under a second and reproduces bit-for-bit.
		rep, err := controlplane.Collect(controlplane.Default())
		check(err)
		blob, err := rep.JSON()
		check(err)
		if *controlplanePath == "-" {
			fmt.Print(string(blob))
		} else {
			check(os.WriteFile(*controlplanePath, blob, 0o644))
			fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", *controlplanePath)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtab: "+format+"\n", args...)
	os.Exit(1)
}
